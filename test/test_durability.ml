(* Tests for the durability layer: WAL framing and scanning, recovery
   replay, durable open/commit/checkpoint, and the fault-injection crash
   matrix that kills writes at every declared failpoint and proves the
   store reopens consistent. *)

open Tse_store
module Prop = Tse_schema.Prop
module Schema_graph = Tse_schema.Schema_graph
module Schema_codec = Tse_schema.Schema_codec
module Database = Tse_db.Database
module Durable = Tse_db.Durable

let check = Alcotest.check

(* ---------------- helpers ---------------- *)

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "tse_durable_%d_%d" (Unix.getpid ()) !counter)
    in
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Unix.rmdir dir
    end;
    dir

(* A deterministic image of everything durability must preserve: the
   schema, the explicit base memberships, and the physical heap. *)
let fingerprint db =
  let bases =
    List.map
      (fun o ->
        Oid.to_string o ^ ":"
        ^ String.concat ","
            (List.map Oid.to_string
               (Oid.Set.elements (Database.base_membership db o))))
      (List.sort Oid.compare (Database.objects db))
  in
  Schema_codec.encode_graph (Database.graph db)
  ^ "\n--\n" ^ String.concat ";" bases ^ "\n--\n"
  ^ Snapshot.to_string (Database.heap db)

let stored = Prop.stored ~origin:(Oid.of_int 0)

let reg db name props supers =
  let cid = Schema_graph.register_base (Database.graph db) ~name ~props ~supers in
  Database.note_new_class db cid;
  cid

(* Person <- Student plus one person, one student. *)
let build_small db =
  let person =
    reg db "Person" [ stored "name" Value.TString; stored "age" Value.TInt ] []
  in
  let student = reg db "Student" [ stored "gpa" Value.TFloat ] [ person ] in
  let o1 =
    Database.create_object db person
      ~init:[ ("name", Value.String "ann"); ("age", Value.Int 30) ]
  in
  let o2 =
    Database.create_object db student
      ~init:[ ("name", Value.String "bob"); ("gpa", Value.Float 3.5) ]
  in
  (person, student, o1, o2)

let assert_consistent what db =
  match Database.check db with
  | [] -> ()
  | problems -> Alcotest.failf "%s: inconsistent: %s" what (String.concat "; " problems)

(* ---------------- WAL framing ---------------- *)

let sample_records () =
  let o = Oid.of_int 1 in
  let r1 =
    Wal.encode_record ~seq:1
      [
        Wal.Op (Heap.Alloc (o, "T"));
        Wal.Op (Heap.Set_slot (o, "x", Value.Int 7));
        Wal.Op (Heap.Set_tag (o, "U"));
        Wal.Gen 5;
        Wal.Ext ("schema", "opaque blob \n with newline");
      ]
  in
  let r2 =
    Wal.encode_record ~seq:2
      [ Wal.Op (Heap.Remove_slot (o, "x")); Wal.Op (Heap.Free o) ]
  in
  (r1, r2)

let test_wal_scan_roundtrip () =
  let r1, r2 = sample_records () in
  let scan = Wal.scan_string (r1 ^ r2) in
  check Alcotest.int "two batches" 2 (List.length scan.Wal.batches);
  Alcotest.(check (option string)) "clean tail" None scan.Wal.reason;
  check Alcotest.int "all bytes valid"
    (String.length r1 + String.length r2)
    scan.Wal.valid_len;
  check (Alcotest.list Alcotest.int) "seqs" [ 1; 2 ]
    (List.map (fun b -> b.Wal.seq) scan.Wal.batches);
  (* re-encoding every decoded batch reproduces the exact bytes *)
  let reencoded =
    String.concat ""
      (List.map
         (fun b -> Wal.encode_record ~seq:b.Wal.seq b.Wal.entries)
         scan.Wal.batches)
  in
  check Alcotest.string "decode/encode identity" (r1 ^ r2) reencoded

let test_wal_torn_tail () =
  let r1, r2 = sample_records () in
  let torn = r1 ^ String.sub r2 0 (String.length r2 - 3) in
  let scan = Wal.scan_string torn in
  check Alcotest.int "only the whole record survives" 1
    (List.length scan.Wal.batches);
  check Alcotest.int "valid prefix ends at record boundary"
    (String.length r1) scan.Wal.valid_len;
  Alcotest.(check bool) "has a reason" true (scan.Wal.reason <> None);
  (* a tail torn inside the header is reported too *)
  let torn_header = r1 ^ String.sub r2 0 3 in
  let scan = Wal.scan_string torn_header in
  check Alcotest.int "torn header: record dropped" 1
    (List.length scan.Wal.batches);
  check Alcotest.int "torn header: valid prefix" (String.length r1)
    scan.Wal.valid_len

let test_wal_checksum_corruption () =
  let r1, r2 = sample_records () in
  let s = Bytes.of_string (r1 ^ r2) in
  (* flip a byte inside the second record's payload *)
  let pos = String.length r1 + 8 + 1 in
  Bytes.set s pos (Char.chr (Char.code (Bytes.get s pos) lxor 0xff));
  let scan = Wal.scan_string (Bytes.to_string s) in
  check Alcotest.int "corrupt record dropped" 1 (List.length scan.Wal.batches);
  Alcotest.(check (option string)) "checksum mismatch detected"
    (Some "checksum mismatch") scan.Wal.reason;
  check Alcotest.int "valid prefix" (String.length r1) scan.Wal.valid_len

let test_wal_truncate_file () =
  let r1, r2 = sample_records () in
  let path = Filename.temp_file "tse_wal" ".log" in
  let oc = open_out_bin path in
  output_string oc (r1 ^ String.sub r2 0 (String.length r2 - 1));
  close_out oc;
  let scan = Wal.scan_file ~path in
  Alcotest.(check bool) "dirty" true (scan.Wal.reason <> None);
  Wal.truncate_file ~path scan.Wal.valid_len;
  let scan = Wal.scan_file ~path in
  Alcotest.(check (option string)) "clean after truncation" None scan.Wal.reason;
  check Alcotest.int "file cut back" (String.length r1) scan.Wal.file_len;
  Sys.remove path

(* ---------------- durable open/commit/reopen ---------------- *)

let test_durable_roundtrip () =
  let dir = fresh_dir () in
  let d, _ = Durable.open_dir ~dir () in
  let db = Durable.db d in
  let _, student, o1, _ = build_small db in
  Database.set_attr db o1 "age" (Value.Int 31);
  Durable.commit d;
  let fp = fingerprint db in
  Durable.close d;
  let d2, report = Durable.open_dir ~dir () in
  let db2 = Durable.db d2 in
  check Alcotest.int "one batch replayed" 1 report.Recovery.batches_applied;
  Alcotest.(check bool) "entries replayed" true
    (report.Recovery.entries_applied > 0);
  check Alcotest.string "state identical" fp (fingerprint db2);
  assert_consistent "reopened" db2;
  check Alcotest.int "student extent survived" 1
    (Database.extent_size db2 student);
  Durable.close d2

let test_durable_uncommitted_lost () =
  let dir = fresh_dir () in
  (* pinned: the assertion is precisely that an Every_commit commit is
     durable the moment it returns; under a grouped policy the same crash
     may also lose the commit itself (covered by the group tests below) *)
  let d, _ = Durable.open_dir ~policy:Durable.Every_commit ~dir () in
  let db = Durable.db d in
  let person, _, o1, _ = build_small db in
  Durable.commit d;
  let committed = fingerprint db in
  (* changes after the last commit must not survive a crash *)
  Database.set_attr db o1 "age" (Value.Int 99);
  ignore (Database.create_object db person ~init:[ ("age", Value.Int 1) ]);
  (* simulate the crash: abandon the handle without closing *)
  let d2, _ = Durable.open_dir ~dir () in
  check Alcotest.string "only the committed state survives" committed
    (fingerprint (Durable.db d2));
  assert_consistent "reopened" (Durable.db d2);
  Durable.close d2

let test_durable_incremental_commits () =
  let dir = fresh_dir () in
  let d, _ = Durable.open_dir ~dir () in
  let db = Durable.db d in
  let person, student, o1, o2 = build_small db in
  Durable.commit d;
  (* second commit: schema growth + membership changes + a destroy *)
  let staff = reg db "Staff" [ stored "salary" Value.TInt ] [ person ] in
  Database.add_base_membership db o1 staff;
  Database.set_attr db o1 "salary" (Value.Int 100);
  Database.destroy_object db o2;
  Durable.commit d;
  let fp = fingerprint db in
  Durable.close d;
  let d2, report = Durable.open_dir ~dir () in
  let db2 = Durable.db d2 in
  check Alcotest.int "two batches" 2 report.Recovery.batches_applied;
  check Alcotest.string "state identical" fp (fingerprint db2);
  assert_consistent "reopened" db2;
  Alcotest.(check bool) "destroyed object stays gone" false
    (Database.mem_object db2 o2);
  Alcotest.(check bool) "added membership survives" true
    (Oid.Set.mem staff (Database.base_membership db2 o1));
  check Alcotest.int "staff extent" 1 (Database.extent_size db2 staff);
  Alcotest.(check bool) "schema class survives" true
    (Schema_graph.find_by_name (Database.graph db2) "Staff" <> None);
  (* fresh OIDs must not collide with replayed ones *)
  let o3 = Database.create_object db2 person ~init:[] in
  Alcotest.(check bool) "no oid collision" true
    (List.for_all (fun o -> not (Oid.equal o o3)) [ o1; o2 ]);
  check Alcotest.int "student extent after destroy" 0
    (Database.extent_size db2 student);
  Durable.close d2

let test_durable_rollback_ops_replay () =
  let dir = fresh_dir () in
  let d, _ = Durable.open_dir ~dir () in
  let db = Durable.db d in
  let heap = Database.heap db in
  let _, _, o1, _ = build_small db in
  Durable.commit d;
  let fp = fingerprint db in
  (* an aborted transaction's compensating ops are logged too, so the
     replayed heap lands exactly where the live one did *)
  let r =
    Txn.with_txn heap (fun () ->
        Database.set_attr db o1 "age" (Value.Int 77);
        raise Txn.Abort)
  in
  Alcotest.(check bool) "txn aborted" true (r = None);
  Durable.commit d;
  Durable.close d;
  let d2, report = Durable.open_dir ~dir () in
  Alcotest.(check bool) "do+undo ops were logged" true
    (report.Recovery.batches_applied >= 2);
  check Alcotest.string "aborted txn leaves no durable trace" fp
    (fingerprint (Durable.db d2));
  assert_consistent "reopened" (Durable.db d2);
  Durable.close d2

let test_durable_checkpoint () =
  let dir = fresh_dir () in
  let d, _ = Durable.open_dir ~dir () in
  let db = Durable.db d in
  let person, _, o1, _ = build_small db in
  Durable.commit d;
  Durable.checkpoint d;
  check Alcotest.int "log folded away" 0
    (Unix.stat (Filename.concat dir "wal")).Unix.st_size;
  (* keep writing after the checkpoint *)
  Database.set_attr db o1 "age" (Value.Int 44);
  ignore (Database.create_object db person ~init:[ ("age", Value.Int 9) ]);
  Durable.commit d;
  let fp = fingerprint db in
  Durable.close d;
  let d2, report = Durable.open_dir ~dir () in
  check Alcotest.int "only the post-checkpoint batch replays" 1
    report.Recovery.batches_applied;
  check Alcotest.string "snapshot + tail = full state" fp
    (fingerprint (Durable.db d2));
  assert_consistent "reopened" (Durable.db d2);
  Durable.close d2

let test_durable_empty_commit_writes_nothing () =
  let dir = fresh_dir () in
  let d, _ = Durable.open_dir ~dir () in
  ignore (build_small (Durable.db d));
  Durable.commit d;
  let size () = (Unix.stat (Filename.concat dir "wal")).Unix.st_size in
  let before = size () in
  Durable.commit d;
  Durable.commit d;
  check Alcotest.int "no-change commits append nothing" before (size ());
  Durable.close d

(* ---------------- crash matrix ---------------- *)

(* Which state must survive a crash at the failpoint: the commit the
   fault interrupts (Pre = it is lost, Post = it is durable). Faults in
   the checkpoint path are always Post: the data was committed to the log
   before the snapshot write begins. *)
type expect = Pre | Post

(* The eager cases pin Every_commit (their failpoints live on that path);
   the group cases pin Group 1, which drives every commit through
   append_nosync + sync, so the group-boundary failpoints fire on a
   single Durable.commit exactly like the eager ones do. *)
let commit_cases =
  [
    ("wal.append.before", Failpoint.Crash_now, Pre);
    ("wal.append.short", Failpoint.Short_write 5, Pre);
    ("wal.append.fsync", Failpoint.Crash_now, Post);
  ]

let group_commit_cases =
  [
    ("wal.group.append", Failpoint.Crash_now, Pre);
    ("wal.group.append", Failpoint.Short_write 5, Pre);
    ("wal.group.fsync", Failpoint.Crash_now, Post);
  ]

let checkpoint_cases =
  [
    ("checkpoint.write.before", Failpoint.Crash_now);
    ("checkpoint.write.short", Failpoint.Short_write 7);
    ("checkpoint.fsync", Failpoint.Crash_now);
    ("checkpoint.rename.before", Failpoint.Crash_now);
    ("checkpoint.rename.after", Failpoint.Crash_now);
    ("wal.truncate.before", Failpoint.Crash_now);
  ]

let run_crash_case ?policy ~name ~action ~expect ~op () =
  let dir = fresh_dir () in
  let d, _ = Durable.open_dir ?policy ~dir () in
  let db = Durable.db d in
  let _, _, o1, _ = build_small db in
  Durable.commit d;
  Durable.sync d;
  let pre = fingerprint db in
  Database.set_attr db o1 "age" (Value.Int 99);
  let post = fingerprint db in
  let hits0 = Failpoint.hit_count name in
  let trips0 = Failpoint.trip_count name in
  Failpoint.arm name action;
  (try
     op d;
     Alcotest.failf "%s: expected a crash" name
   with Failpoint.Crash _ -> ());
  (* the per-site counters prove the armed failpoint actually fired,
     not that the operation failed for some unrelated reason *)
  check Alcotest.int
    (Printf.sprintf "%s: failpoint tripped exactly once" name)
    (trips0 + 1) (Failpoint.trip_count name);
  check Alcotest.bool
    (Printf.sprintf "%s: site was reached" name)
    true
    (Failpoint.hit_count name > hits0);
  Failpoint.reset ();
  (* the process "died": reopen from disk *)
  let d2, report = Durable.open_dir ?policy ~dir () in
  let db2 = Durable.db d2 in
  check Alcotest.string
    (Printf.sprintf "%s: recovered state" name)
    (match expect with Pre -> pre | Post -> post)
    (fingerprint db2);
  assert_consistent name db2;
  (* and the reopened store must still accept and persist new work *)
  Database.set_attr db2 o1 "name" (Value.String "carol");
  Durable.commit d2;
  let final = fingerprint db2 in
  Durable.close d2;
  let d3, _ = Durable.open_dir ?policy ~dir () in
  check Alcotest.string
    (Printf.sprintf "%s: writable after recovery" name)
    final
    (fingerprint (Durable.db d3));
  Durable.close d3;
  report

let run_commit_cases ~policy cases =
  List.iter
    (fun (name, action, expect) ->
      let report =
        run_crash_case ~policy ~name ~action ~expect ~op:Durable.commit ()
      in
      if expect = Pre && action <> Failpoint.Crash_now then
        Alcotest.(check bool)
          (Printf.sprintf "%s: torn bytes dropped" name)
          true
          (report.Recovery.dropped_bytes > 0))
    cases

let test_crash_matrix_commit () =
  run_commit_cases ~policy:Durable.Every_commit commit_cases

let test_crash_matrix_group_commit () =
  run_commit_cases ~policy:(Durable.Group 1) group_commit_cases

let test_crash_matrix_checkpoint () =
  List.iter
    (fun (name, action) ->
      let report =
        run_crash_case ~name ~action ~expect:Post
          ~op:(fun d ->
            Durable.commit d;
            Durable.checkpoint d)
          ()
      in
      (* a crash after the snapshot rename but before the log reset must
         make replay skip the already-folded batches *)
      if String.equal name "checkpoint.rename.after" then
        Alcotest.(check bool) "replay skips checkpointed batches" true
          (report.Recovery.batches_skipped > 0))
    checkpoint_cases

(* Crashes inside [Storage.write_atomic] users outside the durable path:
   the target file must hold either the old or the new image, never a
   mix, with the rename the commit point. *)
let atomic_write_cases prefix =
  [
    (prefix ^ ".write.before", Failpoint.Crash_now, false);
    (prefix ^ ".write.short", Failpoint.Short_write 4, false);
    (prefix ^ ".fsync", Failpoint.Crash_now, false);
    (prefix ^ ".rename.before", Failpoint.Crash_now, false);
    (prefix ^ ".rename.after", Failpoint.Crash_now, true);
  ]

let test_atomic_write_crashes () =
  List.iter
    (fun prefix ->
      let path = Filename.temp_file "tse_atomic" ".dat" in
      List.iter
        (fun (name, action, expect_new) ->
          Storage.write_atomic ~fp:prefix ~path "old image";
          Failpoint.arm name action;
          (try
             Storage.write_atomic ~fp:prefix ~path "new image";
             Alcotest.failf "%s: expected a crash" name
           with Failpoint.Crash _ -> ());
          Failpoint.reset ();
          check Alcotest.string name
            (if expect_new then "new image" else "old image")
            (Storage.read_file path))
        (atomic_write_cases prefix);
      Sys.remove path)
    [ "snapshot"; "catalog" ]

(* The matrix above, the atomic-write sweep, and the rollback test in
   test_store must together exercise every failpoint the code declares —
   a new failpoint without crash coverage fails here. *)
let test_matrix_covers_every_failpoint () =
  let covered =
    List.map (fun (n, _, _) -> n) commit_cases
    @ List.map (fun (n, _, _) -> n) group_commit_cases
    @ List.map (fun (n, _) -> n) checkpoint_cases
    @ List.concat_map
        (fun p -> List.map (fun (n, _, _) -> n) (atomic_write_cases p))
        [ "snapshot"; "catalog" ]
    @ [ "txn.rollback" (* exercised in test_store *) ]
    @ List.map (fun (n, _, _) -> n) (atomic_write_cases "checkpoint")
    @ [
        (* the evolution crash matrix in test_evolution_recovery *)
        "evolve.change"; "evolve.derive"; "evolve.classify";
        "evolve.integrate"; "evolve.reclassify"; "evolve.log.begin";
        "evolve.log.commit";
      ]
  in
  check
    Alcotest.(list string)
    "every declared failpoint has crash coverage" (Failpoint.all ())
    (List.sort_uniq compare covered)

(* ---------------- group commit ---------------- *)

let wal_size dir = (Unix.stat (Filename.concat dir "wal")).Unix.st_size

let test_group_commit_coalesces () =
  let dir = fresh_dir () in
  let d, _ = Durable.open_dir ~policy:(Durable.Group 3) ~dir () in
  let db = Durable.db d in
  let _, _, o1, _ = build_small db in
  (* first two commits are framed, not written: nothing on disk yet *)
  Durable.commit d;
  check Alcotest.int "one unsynced commit" 1 (Durable.unsynced_commits d);
  Database.set_attr db o1 "age" (Value.Int 31);
  Durable.commit d;
  check Alcotest.int "two unsynced commits" 2 (Durable.unsynced_commits d);
  check Alcotest.int "nothing flushed yet" 0 (wal_size dir);
  check Alcotest.int "no fsync yet" 0 (Durable.wal_stats d).Wal.fsyncs;
  (* the third commit completes the group: one write, one fsync *)
  Database.set_attr db o1 "age" (Value.Int 32);
  Durable.commit d;
  check Alcotest.int "group flushed" 0 (Durable.unsynced_commits d);
  Alcotest.(check bool) "group on disk" true (wal_size dir > 0);
  let stats = Durable.wal_stats d in
  check Alcotest.int "one fsync for three commits" 1 stats.Wal.fsyncs;
  check Alcotest.int "three batches framed" 3 stats.Wal.batches_framed;
  check Alcotest.int "batches per sync" 3 stats.Wal.max_batches_per_sync;
  let fp = fingerprint db in
  Durable.close d;
  let d2, report = Durable.open_dir ~dir () in
  check Alcotest.int "all three batches replay" 3
    report.Recovery.batches_applied;
  check Alcotest.string "state identical" fp (fingerprint (Durable.db d2));
  assert_consistent "group reopen" (Durable.db d2);
  Durable.close d2

let test_manual_sync_barrier () =
  let dir = fresh_dir () in
  let d, _ = Durable.open_dir ~policy:Durable.Manual ~dir () in
  let db = Durable.db d in
  let _, _, o1, _ = build_small db in
  Durable.commit d;
  Database.set_attr db o1 "age" (Value.Int 41);
  Durable.commit d;
  check Alcotest.int "manual never auto-syncs" 2 (Durable.unsynced_commits d);
  check Alcotest.int "nothing on disk" 0 (wal_size dir);
  Durable.sync d;
  check Alcotest.int "barrier drains" 0 (Durable.unsynced_commits d);
  let synced = fingerprint db in
  (* a commit after the barrier is lost by a crash; the barrier is not *)
  Database.set_attr db o1 "age" (Value.Int 42);
  Durable.commit d;
  let d2, _ = Durable.open_dir ~policy:Durable.Manual ~dir () in
  check Alcotest.string "exactly the synced prefix survives" synced
    (fingerprint (Durable.db d2));
  assert_consistent "manual reopen" (Durable.db d2);
  Durable.close d2

let test_close_and_checkpoint_are_barriers () =
  List.iter
    (fun finishing ->
      let dir = fresh_dir () in
      let d, _ = Durable.open_dir ~policy:Durable.Manual ~dir () in
      let db = Durable.db d in
      let _, _, o1, _ = build_small db in
      Durable.commit d;
      Database.set_attr db o1 "age" (Value.Int 77);
      Durable.commit d;
      let fp = fingerprint db in
      finishing d;
      let d2, _ = Durable.open_dir ~dir () in
      check Alcotest.string "unsynced commits flushed by the barrier" fp
        (fingerprint (Durable.db d2));
      assert_consistent "barrier reopen" (Durable.db d2);
      Durable.close d2)
    [ Durable.close; (fun d -> Durable.checkpoint d; Durable.close d) ]

let test_set_policy_is_barrier () =
  let dir = fresh_dir () in
  let d, _ = Durable.open_dir ~policy:Durable.Manual ~dir () in
  let db = Durable.db d in
  ignore (build_small db);
  Durable.commit d;
  check Alcotest.int "buffered" 1 (Durable.unsynced_commits d);
  Durable.set_policy d Durable.Every_commit;
  check Alcotest.int "switch flushed" 0 (Durable.unsynced_commits d);
  Alcotest.(check bool) "on disk" true (wal_size dir > 0);
  Durable.close d

let test_policy_parsing () =
  Alcotest.(check bool) "every" true
    (Durable.policy_of_string "every_commit" = Durable.Every_commit);
  Alcotest.(check bool) "every short" true
    (Durable.policy_of_string "every" = Durable.Every_commit);
  Alcotest.(check bool) "group" true
    (Durable.policy_of_string "group:8" = Durable.Group 8);
  Alcotest.(check bool) "manual" true
    (Durable.policy_of_string "Manual" = Durable.Manual);
  check Alcotest.string "roundtrip" "group:8"
    (Durable.policy_to_string (Durable.policy_of_string "group:8"));
  List.iter
    (fun bad ->
      match Durable.policy_of_string bad with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "policy %S should be rejected" bad)
    [ "group:0"; "group:-1"; "group:x"; "sometimes"; "group" ]

(* A group torn mid-flush must degrade to its longest whole-record
   prefix: commits 1..k of the group survive, k+1.. are truncated away.
   Record offsets are discovered from an identical clean run (the log
   bytes are deterministic for a fixed op sequence on a fresh store). *)
let test_partial_group_flush () =
  let run_ops ~dir ~crash_at =
    let d, _ = Durable.open_dir ~policy:Durable.Manual ~dir () in
    let db = Durable.db d in
    let _, _, o1, _ = build_small db in
    Durable.commit d;
    Durable.sync d;
    let states = ref [ fingerprint db ] in
    List.iter
      (fun age ->
        Database.set_attr db o1 "age" (Value.Int age);
        Durable.commit d;
        states := fingerprint db :: !states)
      [ 41; 42; 43 ];
    (match crash_at with
    | None -> Durable.sync d; Durable.close d
    | Some cut ->
      Failpoint.arm "wal.group.append" (Failpoint.Short_write cut);
      (try
         Durable.sync d;
         Alcotest.fail "expected a crash inside the group flush"
       with Failpoint.Crash _ -> ());
      Failpoint.reset ());
    List.rev !states
  in
  (* clean twin run: find where the group's records start *)
  let clean_dir = fresh_dir () in
  let states = run_ops ~dir:clean_dir ~crash_at:None in
  let scan = Wal.scan_file ~path:(Filename.concat clean_dir "wal") in
  let offsets =
    List.filter_map
      (fun (b : Wal.batch) -> if b.seq >= 2 then Some b.start_off else None)
      scan.Wal.batches
  in
  ignore states;
  let group_base = List.nth offsets 0 in
  (* cut inside the group's THIRD record: two whole batches survive.
     (Relative offsets within the group are deterministic across runs;
     absolute fingerprints are not — a process-global property counter
     leaks into the schema encoding — so the recovered state is compared
     against the crash run's own captured states.) *)
  let cut = List.nth offsets 2 - group_base + 5 in
  let dir = fresh_dir () in
  let states' = run_ops ~dir ~crash_at:(Some cut) in
  let d, report = Durable.open_dir ~dir () in
  check Alcotest.int "two of three grouped batches survive" 3
    report.Recovery.batches_applied;
  Alcotest.(check bool) "torn record truncated" true
    (report.Recovery.dropped_bytes > 0);
  check Alcotest.string "recovered = longest whole-record prefix"
    (List.nth states' 2)
    (fingerprint (Durable.db d));
  assert_consistent "partial group" (Durable.db d);
  Durable.close d

(* ---------------- random corruption property ---------------- *)

(* Any single corrupted byte in the log must leave the store openable,
   consistent, and exactly at one of the states the commit sequence went
   through (a prefix of history — never a crash, never an invented
   state). *)
let prop_wal_corruption =
  let dir = fresh_dir () in
  let d, _ = Durable.open_dir ~dir () in
  let db = Durable.db d in
  let states = ref [ fingerprint db ] in
  let snap () = states := fingerprint db :: !states in
  let person, _, o1, o2 = build_small db in
  Durable.commit d;
  snap ();
  Database.set_attr db o1 "age" (Value.Int 41);
  let staff = reg db "Staff" [ stored "salary" Value.TInt ] [ person ] in
  Database.add_base_membership db o1 staff;
  Durable.commit d;
  snap ();
  Database.destroy_object db o2;
  Database.set_attr db o1 "salary" (Value.Int 7);
  Durable.commit d;
  snap ();
  Durable.close d;
  let wal = Storage.read_file (Filename.concat dir "wal") in
  let states = !states in
  QCheck.Test.make ~name:"single-byte WAL corruption never breaks recovery"
    ~count:150
    QCheck.(pair (int_bound (String.length wal - 1)) (int_bound 255))
    (fun (off, byte) ->
      let corrupted = Bytes.of_string wal in
      Bytes.set corrupted off (Char.chr byte);
      let cdir = fresh_dir () in
      Unix.mkdir cdir 0o755;
      let oc = open_out_bin (Filename.concat cdir "wal") in
      output_bytes oc corrupted;
      close_out oc;
      let d, _ = Durable.open_dir ~dir:cdir () in
      let db = Durable.db d in
      let fp = fingerprint db in
      let ok = Database.check db = [] && List.mem fp states in
      Durable.close d;
      ok)

(* ---------------- group-commit prefix-durability property ---------------- *)

(* Random interleavings of writes, commits, explicit sync barriers and
   crashes (handle abandoned without close) under a grouped or manual
   policy. The invariant is prefix durability: the recovered state is
   exactly the last SYNCED commit point — a synced prefix of the commit
   sequence, never a later unsynced commit, never an invented state —
   and the recovered database passes the consistency oracle. This is the
   group-commit twin of the corruption property below. *)
type group_step = Write of int | Commit | Sync | Crash

let prop_group_prefix_durability =
  let step_gen =
    QCheck.Gen.(
      frequency
        [
          (5, map (fun i -> Write i) (int_bound 99));
          (4, return Commit);
          (2, return Sync);
          (2, return Crash);
        ])
  in
  let policy_gen =
    QCheck.Gen.oneofl
      [ Durable.Group 2; Durable.Group 3; Durable.Group 8; Durable.Manual ]
  in
  let print_scenario (policy, steps) =
    Printf.sprintf "%s: %s"
      (Durable.policy_to_string policy)
      (String.concat " "
         (List.map
            (function
              | Write i -> Printf.sprintf "w%d" i
              | Commit -> "commit"
              | Sync -> "sync"
              | Crash -> "CRASH")
            steps))
  in
  let arb =
    QCheck.make ~print:print_scenario
      QCheck.Gen.(pair policy_gen (list_size (int_range 1 40) step_gen))
  in
  QCheck.Test.make
    ~name:"group commit: recovery lands on the last synced commit" ~count:60
    arb
    (fun (policy, steps) ->
      let dir = fresh_dir () in
      let d = ref (fst (Durable.open_dir ~policy ~dir ())) in
      let o =
        let db = Durable.db !d in
        let item =
          reg db "Item" [ stored "n" Value.TInt; stored "s" Value.TString ] []
        in
        Database.create_object db item
          ~init:[ ("n", Value.Int 0); ("s", Value.String "x") ]
      in
      Durable.commit !d;
      Durable.sync !d;
      (* fingerprints by commit index; the synced / committed cursors
         delimit which of them a crash may surface *)
      let states = ref [| fingerprint (Durable.db !d) |] in
      let committed = ref 0 and synced = ref 0 in
      let ok = ref true in
      List.iter
        (fun step ->
          if !ok then
            match step with
            | Write i ->
              Database.set_attr (Durable.db !d) o "n" (Value.Int i)
            | Commit ->
              Durable.commit !d;
              states := Array.append !states [| fingerprint (Durable.db !d) |];
              committed := Array.length !states - 1;
              if Durable.unsynced_commits !d = 0 then synced := !committed
            | Sync ->
              Durable.sync !d;
              synced := !committed
            | Crash ->
              (* abandon the handle: everything past the last barrier is
                 in the doomed in-memory group buffer *)
              let d2, _ = Durable.open_dir ~policy ~dir () in
              d := d2;
              let fp = fingerprint (Durable.db d2) in
              ok :=
                String.equal fp !states.(!synced)
                && Database.check (Durable.db d2) = [];
              (* the recovered prefix is the new history *)
              states := Array.sub !states 0 (!synced + 1);
              committed := !synced)
        steps;
      (* final crash so every scenario ends with a verified recovery *)
      let d2, _ = Durable.open_dir ~policy ~dir () in
      let fp = fingerprint (Durable.db d2) in
      ok :=
        !ok
        && String.equal fp !states.(!synced)
        && Database.check (Durable.db d2) = [];
      Durable.close d2;
      !ok)

let suite =
  [
    Alcotest.test_case "wal scan roundtrip" `Quick test_wal_scan_roundtrip;
    Alcotest.test_case "wal torn tail" `Quick test_wal_torn_tail;
    Alcotest.test_case "wal checksum corruption" `Quick
      test_wal_checksum_corruption;
    Alcotest.test_case "wal truncate file" `Quick test_wal_truncate_file;
    Alcotest.test_case "durable roundtrip" `Quick test_durable_roundtrip;
    Alcotest.test_case "uncommitted changes lost" `Quick
      test_durable_uncommitted_lost;
    Alcotest.test_case "incremental commits" `Quick
      test_durable_incremental_commits;
    Alcotest.test_case "aborted txn replay" `Quick
      test_durable_rollback_ops_replay;
    Alcotest.test_case "checkpoint" `Quick test_durable_checkpoint;
    Alcotest.test_case "empty commit writes nothing" `Quick
      test_durable_empty_commit_writes_nothing;
    Alcotest.test_case "crash matrix: commit path" `Quick
      test_crash_matrix_commit;
    Alcotest.test_case "crash matrix: group commit path" `Quick
      test_crash_matrix_group_commit;
    Alcotest.test_case "crash matrix: checkpoint path" `Quick
      test_crash_matrix_checkpoint;
    Alcotest.test_case "crash matrix: atomic writes" `Quick
      test_atomic_write_crashes;
    Alcotest.test_case "crash matrix covers every failpoint" `Quick
      test_matrix_covers_every_failpoint;
    Alcotest.test_case "group commit coalesces" `Quick
      test_group_commit_coalesces;
    Alcotest.test_case "manual sync barrier" `Quick test_manual_sync_barrier;
    Alcotest.test_case "close/checkpoint force a barrier" `Quick
      test_close_and_checkpoint_are_barriers;
    Alcotest.test_case "set_policy forces a barrier" `Quick
      test_set_policy_is_barrier;
    Alcotest.test_case "sync policy parsing" `Quick test_policy_parsing;
    Alcotest.test_case "partial group flush truncates to a record boundary"
      `Quick test_partial_group_flush;
  ]
  @ List.map Qcheck_det.to_alcotest
      [ prop_wal_corruption; prop_group_prefix_durability ]
