(* Tests for maintained indexes and the query engine. *)

open Tse_store
open Tse_schema
open Tse_db
open Tse_query

let check = Alcotest.check
let uni () = Tse_workload.University.build ()

let fixture () =
  let u = uni () in
  let idx = Indexes.create u.db in
  ignore (Tse_workload.University.populate u ~n:30);
  (u, idx)

let test_index_build_and_lookup () =
  let u, idx = fixture () in
  Indexes.ensure idx u.person "age";
  Alcotest.(check bool) "indexed" true (Indexes.indexed idx u.person "age");
  let some_age =
    match Database.get_prop u.db (List.hd (Database.extent_list u.db u.person)) "age" with
    | v -> v
  in
  let hits = Option.get (Indexes.lookup idx u.person "age" some_age) in
  Alcotest.(check bool) "non-empty lookup" true (not (Oid.Set.is_empty hits));
  (* all hits genuinely carry the value *)
  Oid.Set.iter
    (fun o ->
      Alcotest.(check bool) "hit has value" true
        (Value.equal (Database.get_prop u.db o "age") some_age))
    hits;
  Alcotest.(check bool) "overhead accounted" true (Indexes.overhead_bytes idx > 0)

let test_index_maintenance () =
  let u, idx = fixture () in
  Indexes.ensure idx u.person "age";
  let o = Database.create_object u.db u.person ~init:[ ("age", Value.Int 999) ] in
  (* creation indexed *)
  check Alcotest.int "new object indexed" 1
    (Oid.Set.cardinal (Option.get (Indexes.lookup idx u.person "age" (Value.Int 999))));
  (* update moves the entry *)
  Database.set_attr u.db o "age" (Value.Int 998);
  check Alcotest.int "old key empty" 0
    (Oid.Set.cardinal (Option.get (Indexes.lookup idx u.person "age" (Value.Int 999))));
  check Alcotest.int "new key hit" 1
    (Oid.Set.cardinal (Option.get (Indexes.lookup idx u.person "age" (Value.Int 998))));
  (* destruction unindexes *)
  Database.destroy_object u.db o;
  check Alcotest.int "destroyed unindexed" 0
    (Oid.Set.cardinal (Option.get (Indexes.lookup idx u.person "age" (Value.Int 998))))

let test_index_on_virtual_class () =
  (* indexes work on select classes too: membership changes maintain them *)
  let u, idx = fixture () in
  let adult =
    Tse_algebra.Ops.select u.db ~name:"Adult" ~src:u.person
      Expr.(attr "age" >= int 18)
  in
  Indexes.ensure idx adult "age";
  let o = Database.create_object u.db u.person ~init:[ ("age", Value.Int 50) ] in
  check Alcotest.int "adult indexed" 1
    (Oid.Set.cardinal (Option.get (Indexes.lookup idx adult "age" (Value.Int 50))));
  (* leaving the class unindexes, without destroying the object *)
  Database.set_attr u.db o "age" (Value.Int 10);
  check Alcotest.int "left the class" 0
    (Oid.Set.cardinal (Option.get (Indexes.lookup idx adult "age" (Value.Int 10))))

let test_engine_plans () =
  let u, idx = fixture () in
  Indexes.ensure idx u.person "age";
  let p1 = Engine.plan u.db idx u.person Expr.(attr "age" === int 30) in
  (match p1 with
  | Engine.Index_lookup { attr = "age"; kind = Engine.Hash; residual = false } -> ()
  | _ -> Alcotest.fail "expected pure index lookup");
  let p2 =
    Engine.plan u.db idx u.person
      Expr.(attr "age" === int 30 && (attr "name" <> str "x"))
  in
  (match p2 with
  | Engine.Index_lookup { attr = "age"; kind = Engine.Hash; residual = true } -> ()
  | _ -> Alcotest.fail "expected index + residual");
  let p3 = Engine.plan u.db idx u.person Expr.(attr "age" >= int 30) in
  (match p3 with
  | Engine.Extent_scan -> ()
  | _ -> Alcotest.fail "ranges scan");
  let p4 = Engine.plan u.db idx u.person Expr.(attr "name" === str "x") in
  match p4 with
  | Engine.Extent_scan -> ()
  | _ -> Alcotest.fail "unindexed attr scans"

let test_planner_prefers_selective_index () =
  (* two usable equality indexes: the planner must pick the one with the
     higher key cardinality, not merely the first conjunct in predicate
     order — first-pick and best-pick scan different candidate counts *)
  let u = uni () in
  let idx = Indexes.create u.db in
  for i = 0 to 11 do
    ignore
      (Database.create_object u.db u.person
         ~init:
           [
             ("name", Value.String (Printf.sprintf "p%d" i));
             ("age", Value.Int 30);
             ("ssn", Value.Int (7000 + i));
           ])
  done;
  Indexes.ensure idx u.person "age";
  Indexes.ensure idx u.person "ssn";
  check Alcotest.(option int) "age index has one key" (Some 1)
    (Indexes.key_cardinality idx u.person "age");
  check Alcotest.(option int) "ssn index has twelve keys" (Some 12)
    (Indexes.key_cardinality idx u.person "ssn");
  (* the low-cardinality conjunct comes FIRST in the predicate *)
  let pred = Expr.(attr "age" === int 30 && (attr "ssn" === int 7003)) in
  (match Engine.plan u.db idx u.person pred with
  | Engine.Index_lookup { attr = "ssn"; kind = Engine.Hash; residual = true } -> ()
  | p ->
    Alcotest.failf "expected ssn lookup + residual, got %a" Engine.pp_plan p);
  (* the choice matters: the rejected first conjunct enumerates the whole
     population, the selected one touches a single bucket *)
  let candidates a v =
    Oid.Set.cardinal (Option.get (Indexes.lookup idx u.person a v))
  in
  check Alcotest.int "first-pick candidates" 12 (candidates "age" (Value.Int 30));
  check Alcotest.int "best-pick candidates" 1
    (candidates "ssn" (Value.Int 7003));
  let hits = Engine.select u.db idx u.person pred in
  check Alcotest.int "one match" 1 (Oid.Set.cardinal hits)

let test_engine_results_agree () =
  let u, idx = fixture () in
  Indexes.ensure idx u.person "age";
  let preds =
    Expr.
      [
        attr "age" === int 30;
        attr "age" === int 30 && (attr "ssn" > int 10010);
        attr "age" >= int 40;
        bool false;
      ]
  in
  List.iter
    (fun pred ->
      let indexed = Engine.select u.db idx u.person pred in
      (* ground truth: a plain scan *)
      let scanned =
        Oid.Set.filter (fun o -> Database.holds u.db o pred)
          (Database.extent u.db u.person)
      in
      Alcotest.(check bool)
        (Format.asprintf "results agree for %a" Expr.pp pred)
        true
        (Oid.Set.equal indexed scanned))
    preds

let test_engine_after_evolution () =
  (* the engine keeps working on the primed classes a schema change makes *)
  let u, idx = fixture () in
  let tsem = Tse_core.Tsem.of_database u.db in
  ignore (Tse_core.Tsem.define_view_by_names tsem ~name:"VS" [ "Person"; "Student" ]);
  let v1 =
    Tse_core.Tsem.evolve tsem ~view:"VS"
      (Tse_core.Change.Add_attribute
         { cls = "Student"; def = Tse_core.Change.attr "credits" Value.TInt })
  in
  let student' = Tse_views.View_schema.cid_of_exn v1 "Student" in
  Indexes.ensure idx student' "credits";
  let o =
    Tse_update.Generic.create u.db student'
      ~init:[ ("credits", Value.Int 12); ("age", Value.Int 20) ]
  in
  let hits = Engine.select u.db idx student' Expr.(attr "credits" === int 12) in
  Alcotest.(check bool) "indexed select on evolved class" true
    (Oid.Set.mem o hits);
  Alcotest.(check (list string)) "consistent" [] (Database.check u.db)

(* --- range indexes ------------------------------------------------------- *)

let test_range_index_lookup_and_maintenance () =
  let u, idx = fixture () in
  Indexes.ensure ~kind:Indexes.Ordered idx u.person "age";
  check Alcotest.(option (of_pp Fmt.nop)) "ordered kind"
    (Some Indexes.Ordered)
    (Indexes.kind_of idx u.person "age");
  let range ~lo ~hi = Option.get (Indexes.range_lookup idx u.person "age" ~lo ~hi) in
  let scan_range lo_incl hi_excl =
    Oid.Set.filter
      (fun o ->
        match Database.get_prop u.db o "age" with
        | Value.Int a -> a >= lo_incl && a < hi_excl
        | _ -> false)
      (Database.extent u.db u.person)
  in
  (* boxed window [20, 40) *)
  let boxed =
    range ~lo:(Some (Value.Int 20, true)) ~hi:(Some (Value.Int 40, false))
  in
  Alcotest.(check bool) "boxed window" true
    (Oid.Set.equal boxed (scan_range 20 40));
  (* one-sided: everything >= 40 *)
  let above = range ~lo:(Some (Value.Int 40, true)) ~hi:None in
  Alcotest.(check bool) "open upper side" true
    (Oid.Set.equal above (scan_range 40 max_int));
  (* equality probes still answered by the ordered backing *)
  (match Indexes.lookup idx u.person "age" (Value.Int 30) with
  | Some hits ->
    Oid.Set.iter
      (fun o ->
        Alcotest.(check bool) "eq probe exact" true
          (Value.equal (Database.get_prop u.db o "age") (Value.Int 30)))
      hits
  | None -> Alcotest.fail "ordered index must answer equality probes");
  (* maintenance: writes move entries between keys *)
  let o = Database.create_object u.db u.person ~init:[ ("age", Value.Int 77) ] in
  let at v =
    Option.get
      (Indexes.range_lookup idx u.person "age" ~lo:(Some (Value.Int v, true))
         ~hi:(Some (Value.Int v, true)))
  in
  Alcotest.(check bool) "new object in range" true (Oid.Set.mem o (at 77));
  Database.set_attr u.db o "age" (Value.Int 78);
  Alcotest.(check bool) "moved off old key" false (Oid.Set.mem o (at 77));
  Alcotest.(check bool) "moved to new key" true (Oid.Set.mem o (at 78));
  Database.destroy_object u.db o;
  Alcotest.(check bool) "destroyed unindexed" false (Oid.Set.mem o (at 78))

let test_range_plan_and_explain () =
  let u, idx = fixture () in
  Indexes.ensure ~kind:Indexes.Ordered idx u.person "age";
  let pred = Expr.(attr "age" >= int 25 && (attr "age" < int 35)) in
  let ex, hits = Engine.select_explain u.db idx u.person pred in
  (match ex.Engine.ex_plan with
  | Engine.Range_scan { attr = "age"; _ } -> ()
  | p -> Alcotest.failf "expected range scan, got %a" Engine.pp_plan p);
  check Alcotest.(option string) "chosen index" (Some "age")
    ex.Engine.chosen_index;
  Alcotest.(check bool) "conjunct order reported" true
    (List.length ex.Engine.conjunct_order = 2);
  let scanned =
    Oid.Set.filter (fun o -> Database.holds u.db o pred)
      (Database.extent u.db u.person)
  in
  Alcotest.(check bool) "range results == scan results" true
    (Oid.Set.equal hits scanned);
  (* candidates for the boxed window stay below the full extent *)
  Alcotest.(check bool) "index pruned the scan" true
    (ex.Engine.rows_scanned
    < Oid.Set.cardinal (Database.extent u.db u.person));
  (* second run hits the plan cache *)
  let ex2 = Engine.explain u.db idx u.person pred in
  Alcotest.(check bool) "first run compiled" false ex.Engine.plan_cache_hit;
  Alcotest.(check bool) "second run cached" true ex2.Engine.plan_cache_hit

(* --- planner units: sargable extraction and index-vs-scan ---------------- *)

let test_sarg_extraction () =
  let module C = Tse_query.Compile in
  (match C.sarg_of Expr.(attr "age" === int 30) with
  | Some (C.Sarg_eq ("age", Value.Int 30)) -> ()
  | _ -> Alcotest.fail "eq sarg");
  (match C.sarg_of Expr.(attr "age" >= int 21) with
  | Some (C.Sarg_cmp ("age", Expr.Ge, Value.Int 21)) -> ()
  | _ -> Alcotest.fail "range sarg");
  (* constant on the left flips the comparison onto the attribute *)
  (match C.sarg_of Expr.(int 21 < attr "age") with
  | Some (C.Sarg_cmp ("age", Expr.Gt, Value.Int 21)) -> ()
  | _ -> Alcotest.fail "flipped range sarg");
  (match C.sarg_of Expr.(int 30 === attr "age") with
  | Some (C.Sarg_eq ("age", Value.Int 30)) -> ()
  | _ -> Alcotest.fail "flipped eq sarg");
  (* not sargable: attr-attr, arithmetic, inequality *)
  Alcotest.(check bool) "attr-attr not sargable" true
    (C.sarg_of Expr.(attr "age" < attr "ssn") = None);
  Alcotest.(check bool) "arith not sargable" true
    (C.sarg_of Expr.(Arith (Add, attr "age", int 1) === int 30) = None);
  Alcotest.(check bool) "Ne not sargable" true
    (C.sarg_of Expr.(attr "age" <> int 30) = None)

let test_index_vs_scan_choice () =
  (* an ancestor index whose estimated bucket exceeds the queried extent
     must lose to the extent scan *)
  let u = uni () in
  let idx = Indexes.create u.db in
  for i = 0 to 49 do
    ignore
      (Database.create_object u.db u.person
         ~init:[ ("name", Value.String (Printf.sprintf "p%d" i)); ("age", Value.Int 30) ])
  done;
  (* a tiny derived class: 5 members *)
  let five =
    Tse_algebra.Ops.select u.db ~name:"FiveNames" ~src:u.person
      Expr.(attr "name" < str "p13")
  in
  Alcotest.(check int) "five members" 5 (Oid.Set.cardinal (Database.extent u.db five));
  Indexes.ensure idx u.person "age";
  (* every Person has age 30: the pushed-down bucket estimate (50) dwarfs
     the 5-object extent *)
  (match Engine.plan u.db idx five Expr.(attr "age" === int 30) with
  | Engine.Extent_scan -> ()
  | p -> Alcotest.failf "expected extent scan, got %a" Engine.pp_plan p);
  (* but a selective ancestor index wins *)
  Indexes.ensure idx u.person "name";
  (match Engine.plan u.db idx five Expr.(attr "name" === str "p7") with
  | Engine.Index_lookup { attr = "name"; _ } -> ()
  | p -> Alcotest.failf "expected name lookup, got %a" Engine.pp_plan p)

let test_pushdown_through_selects () =
  let u, idx = fixture () in
  let adult =
    Tse_algebra.Ops.select u.db ~name:"Adult" ~src:u.person
      Expr.(attr "age" >= int 18)
  in
  Indexes.ensure idx u.person "ssn";
  let some_adult = Oid.Set.min_elt (Database.extent u.db adult) in
  let ssn = Database.get_prop u.db some_adult "ssn" in
  let pred = Expr.(attr "ssn" === Expr.Const ssn) in
  let ex, hits = Engine.select_explain u.db idx adult pred in
  (match ex.Engine.ex_plan with
  | Engine.Index_lookup { attr = "ssn"; _ } -> ()
  | p -> Alcotest.failf "expected pushed-down ssn lookup, got %a" Engine.pp_plan p);
  check Alcotest.int "pushed one derivation level" 1 ex.Engine.pushdown_depth;
  let scanned =
    Oid.Set.filter (fun o -> Database.holds u.db o pred)
      (Database.extent u.db adult)
  in
  Alcotest.(check bool) "pushdown results == scan results" true
    (Oid.Set.equal hits scanned);
  Alcotest.(check bool) "found the adult" true (Oid.Set.mem some_adult hits)

(* --- plan cache invalidation --------------------------------------------- *)

let test_plan_cache_invalidation_on_evolution () =
  let u, idx = fixture () in
  let pred = Expr.(attr "age" >= int 21) in
  let stamp0 = Database.compile_stamp u.db in
  let ex1 = Engine.explain u.db idx u.person pred in
  let ex2 = Engine.explain u.db idx u.person pred in
  Alcotest.(check bool) "cold: miss" false ex1.Engine.plan_cache_hit;
  Alcotest.(check bool) "warm: hit" true ex2.Engine.plan_cache_hit;
  let before = Engine.select u.db idx u.person pred in
  (* evolve the predicate's class mid-stream *)
  let tsem = Tse_core.Tsem.of_database u.db in
  ignore (Tse_core.Tsem.define_view_by_names tsem ~name:"VQ" [ "Person" ]);
  ignore
    (Tse_core.Tsem.evolve tsem ~view:"VQ"
       (Tse_core.Change.Add_attribute
          { cls = "Person"; def = Tse_core.Change.attr "badge" Value.TInt }));
  Alcotest.(check bool) "schema state moved" true
    (Database.compile_stamp u.db > stamp0);
  (* the stale plan must not be reused... *)
  let ex3 = Engine.explain u.db idx u.person pred in
  Alcotest.(check bool) "after evolve: recompiled" false
    ex3.Engine.plan_cache_hit;
  (* ...and the recompiled plan still answers correctly *)
  let after = Engine.select u.db idx u.person pred in
  Alcotest.(check bool) "same members satisfy the predicate" true
    (Oid.Set.equal before after);
  let oracle =
    Oid.Set.filter (fun o -> Database.holds u.db o pred)
      (Database.extent u.db u.person)
  in
  Alcotest.(check bool) "matches the interpreted oracle" true
    (Oid.Set.equal after oracle)

(* --- count without materialization --------------------------------------- *)

let test_count_agrees_with_select () =
  let u, idx = fixture () in
  Indexes.ensure idx u.person "age";
  Indexes.ensure ~kind:Indexes.Ordered idx u.person "ssn";
  let preds =
    Expr.
      [
        attr "age" === int 30; (* hash probe *)
        attr "ssn" >= int 10005 && (attr "ssn" < int 10020); (* range scan *)
        attr "age" >= int 40; (* extent scan *)
        bool false;
      ]
  in
  List.iter
    (fun pred ->
      check Alcotest.int
        (Format.asprintf "count == |select| for %a" Expr.pp pred)
        (Oid.Set.cardinal (Engine.select u.db idx u.person pred))
        (Engine.count u.db idx u.person pred))
    preds

(* --- compiled == interpreted (property) ---------------------------------- *)

let gen_pred st sch cls =
  let module RS = Tse_workload.Random_schema in
  let attr_leaf () =
    let name =
      if Random.State.int st 8 = 0 then "ghost_attr"
      else
        match RS.random_attr st sch cls with
        | Some a -> a
        | None -> "ghost_attr"
    in
    let const =
      match Random.State.int st 4 with
      | 0 -> Expr.int (Random.State.int st 50)
      | 1 -> Expr.str "x"
      | 2 -> Expr.bool (Random.State.bool st)
      | _ -> Expr.Const Value.Null
    in
    let a = Expr.attr name in
    match Random.State.int st 6 with
    | 0 -> Expr.(a === const)
    | 1 -> Expr.(a < const)
    | 2 -> Expr.(a >= const)
    | 3 -> Expr.(a <> const)
    | 4 -> Expr.Is_null a
    | _ -> Expr.(Arith (Add, a, int 1) > const)
  in
  let class_leaf () =
    let name =
      match RS.class_names sch with
      | [] -> "Ghost"
      | names -> List.nth names (Random.State.int st (List.length names))
    in
    Expr.In_class name
  in
  let rec go depth =
    if depth = 0 then if Random.State.int st 5 = 0 then class_leaf () else attr_leaf ()
    else
      match Random.State.int st 5 with
      | 0 -> Expr.(go (depth - 1) && go (depth - 1))
      | 1 -> Expr.(go (depth - 1) || go (depth - 1))
      | 2 -> Expr.Not (go (depth - 1))
      | 3 -> Expr.If (go (depth - 1), go (depth - 1), go (depth - 1))
      | _ -> go 0
  in
  go (1 + Random.State.int st 3)

let prop_compiled_matches_interpreted =
  QCheck.Test.make ~name:"compiled predicate == interpreted oracle" ~count:40
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000))
    (fun seed ->
      let module RS = Tse_workload.Random_schema in
      let st = Random.State.make [| seed |] in
      let sch =
        RS.generate ~seed ~classes:6 ~attrs_per_class:3 ~objects:40 ~virtuals:3
          ()
      in
      let db = sch.RS.db in
      List.iter
        (fun _ ->
          let cls = RS.random_class st sch in
          let pred = gen_pred st sch cls in
          let compiled = Database.compile_pred db pred in
          Oid.Set.iter
            (fun o ->
              let interpreted = Database.holds db o pred in
              if compiled o <> interpreted then
                QCheck.Test.fail_reportf
                  "compiled %b <> interpreted %b for %a on %s" (compiled o)
                  interpreted Expr.pp pred (Oid.to_string o))
            (Database.extent db cls))
        (List.init 8 Fun.id);
      true)

let suite =
  [
    Alcotest.test_case "index build + lookup" `Quick test_index_build_and_lookup;
    Alcotest.test_case "index maintenance on events" `Quick
      test_index_maintenance;
    Alcotest.test_case "index on a virtual class" `Quick
      test_index_on_virtual_class;
    Alcotest.test_case "planner decisions" `Quick test_engine_plans;
    Alcotest.test_case "planner prefers the selective index" `Quick
      test_planner_prefers_selective_index;
    Alcotest.test_case "indexed results == scan results" `Quick
      test_engine_results_agree;
    Alcotest.test_case "engine across schema evolution" `Quick
      test_engine_after_evolution;
    Alcotest.test_case "range index: lookups + maintenance" `Quick
      test_range_index_lookup_and_maintenance;
    Alcotest.test_case "range plan + explain" `Quick test_range_plan_and_explain;
    Alcotest.test_case "sargable conjunct extraction" `Quick test_sarg_extraction;
    Alcotest.test_case "index-vs-scan choice" `Quick test_index_vs_scan_choice;
    Alcotest.test_case "pushdown through select derivation" `Quick
      test_pushdown_through_selects;
    Alcotest.test_case "plan cache invalidated by evolution" `Quick
      test_plan_cache_invalidation_on_evolution;
    Alcotest.test_case "count == select cardinality" `Quick
      test_count_agrees_with_select;
    QCheck_alcotest.to_alcotest prop_compiled_matches_interpreted;
  ]
