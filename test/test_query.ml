(* Tests for maintained indexes and the query engine. *)

open Tse_store
open Tse_schema
open Tse_db
open Tse_query

let check = Alcotest.check
let uni () = Tse_workload.University.build ()

let fixture () =
  let u = uni () in
  let idx = Indexes.create u.db in
  ignore (Tse_workload.University.populate u ~n:30);
  (u, idx)

let test_index_build_and_lookup () =
  let u, idx = fixture () in
  Indexes.ensure idx u.person "age";
  Alcotest.(check bool) "indexed" true (Indexes.indexed idx u.person "age");
  let some_age =
    match Database.get_prop u.db (List.hd (Database.extent_list u.db u.person)) "age" with
    | v -> v
  in
  let hits = Option.get (Indexes.lookup idx u.person "age" some_age) in
  Alcotest.(check bool) "non-empty lookup" true (not (Oid.Set.is_empty hits));
  (* all hits genuinely carry the value *)
  Oid.Set.iter
    (fun o ->
      Alcotest.(check bool) "hit has value" true
        (Value.equal (Database.get_prop u.db o "age") some_age))
    hits;
  Alcotest.(check bool) "overhead accounted" true (Indexes.overhead_bytes idx > 0)

let test_index_maintenance () =
  let u, idx = fixture () in
  Indexes.ensure idx u.person "age";
  let o = Database.create_object u.db u.person ~init:[ ("age", Value.Int 999) ] in
  (* creation indexed *)
  check Alcotest.int "new object indexed" 1
    (Oid.Set.cardinal (Option.get (Indexes.lookup idx u.person "age" (Value.Int 999))));
  (* update moves the entry *)
  Database.set_attr u.db o "age" (Value.Int 998);
  check Alcotest.int "old key empty" 0
    (Oid.Set.cardinal (Option.get (Indexes.lookup idx u.person "age" (Value.Int 999))));
  check Alcotest.int "new key hit" 1
    (Oid.Set.cardinal (Option.get (Indexes.lookup idx u.person "age" (Value.Int 998))));
  (* destruction unindexes *)
  Database.destroy_object u.db o;
  check Alcotest.int "destroyed unindexed" 0
    (Oid.Set.cardinal (Option.get (Indexes.lookup idx u.person "age" (Value.Int 998))))

let test_index_on_virtual_class () =
  (* indexes work on select classes too: membership changes maintain them *)
  let u, idx = fixture () in
  let adult =
    Tse_algebra.Ops.select u.db ~name:"Adult" ~src:u.person
      Expr.(attr "age" >= int 18)
  in
  Indexes.ensure idx adult "age";
  let o = Database.create_object u.db u.person ~init:[ ("age", Value.Int 50) ] in
  check Alcotest.int "adult indexed" 1
    (Oid.Set.cardinal (Option.get (Indexes.lookup idx adult "age" (Value.Int 50))));
  (* leaving the class unindexes, without destroying the object *)
  Database.set_attr u.db o "age" (Value.Int 10);
  check Alcotest.int "left the class" 0
    (Oid.Set.cardinal (Option.get (Indexes.lookup idx adult "age" (Value.Int 10))))

let test_engine_plans () =
  let u, idx = fixture () in
  Indexes.ensure idx u.person "age";
  let p1 = Engine.plan u.db idx u.person Expr.(attr "age" === int 30) in
  (match p1 with
  | Engine.Index_lookup { attr = "age"; residual = false } -> ()
  | _ -> Alcotest.fail "expected pure index lookup");
  let p2 =
    Engine.plan u.db idx u.person
      Expr.(attr "age" === int 30 && (attr "name" <> str "x"))
  in
  (match p2 with
  | Engine.Index_lookup { attr = "age"; residual = true } -> ()
  | _ -> Alcotest.fail "expected index + residual");
  let p3 = Engine.plan u.db idx u.person Expr.(attr "age" >= int 30) in
  (match p3 with
  | Engine.Extent_scan -> ()
  | _ -> Alcotest.fail "ranges scan");
  let p4 = Engine.plan u.db idx u.person Expr.(attr "name" === str "x") in
  match p4 with
  | Engine.Extent_scan -> ()
  | _ -> Alcotest.fail "unindexed attr scans"

let test_planner_prefers_selective_index () =
  (* two usable equality indexes: the planner must pick the one with the
     higher key cardinality, not merely the first conjunct in predicate
     order — first-pick and best-pick scan different candidate counts *)
  let u = uni () in
  let idx = Indexes.create u.db in
  for i = 0 to 11 do
    ignore
      (Database.create_object u.db u.person
         ~init:
           [
             ("name", Value.String (Printf.sprintf "p%d" i));
             ("age", Value.Int 30);
             ("ssn", Value.Int (7000 + i));
           ])
  done;
  Indexes.ensure idx u.person "age";
  Indexes.ensure idx u.person "ssn";
  check Alcotest.(option int) "age index has one key" (Some 1)
    (Indexes.key_cardinality idx u.person "age");
  check Alcotest.(option int) "ssn index has twelve keys" (Some 12)
    (Indexes.key_cardinality idx u.person "ssn");
  (* the low-cardinality conjunct comes FIRST in the predicate *)
  let pred = Expr.(attr "age" === int 30 && (attr "ssn" === int 7003)) in
  (match Engine.plan u.db idx u.person pred with
  | Engine.Index_lookup { attr = "ssn"; residual = true } -> ()
  | p ->
    Alcotest.failf "expected ssn lookup + residual, got %a" Engine.pp_plan p);
  (* the choice matters: the rejected first conjunct enumerates the whole
     population, the selected one touches a single bucket *)
  let candidates a v =
    Oid.Set.cardinal (Option.get (Indexes.lookup idx u.person a v))
  in
  check Alcotest.int "first-pick candidates" 12 (candidates "age" (Value.Int 30));
  check Alcotest.int "best-pick candidates" 1
    (candidates "ssn" (Value.Int 7003));
  let hits = Engine.select u.db idx u.person pred in
  check Alcotest.int "one match" 1 (Oid.Set.cardinal hits)

let test_engine_results_agree () =
  let u, idx = fixture () in
  Indexes.ensure idx u.person "age";
  let preds =
    Expr.
      [
        attr "age" === int 30;
        attr "age" === int 30 && (attr "ssn" > int 10010);
        attr "age" >= int 40;
        bool false;
      ]
  in
  List.iter
    (fun pred ->
      let indexed = Engine.select u.db idx u.person pred in
      (* ground truth: a plain scan *)
      let scanned =
        Oid.Set.filter (fun o -> Database.holds u.db o pred)
          (Database.extent u.db u.person)
      in
      Alcotest.(check bool)
        (Format.asprintf "results agree for %a" Expr.pp pred)
        true
        (Oid.Set.equal indexed scanned))
    preds

let test_engine_after_evolution () =
  (* the engine keeps working on the primed classes a schema change makes *)
  let u, idx = fixture () in
  let tsem = Tse_core.Tsem.of_database u.db in
  ignore (Tse_core.Tsem.define_view_by_names tsem ~name:"VS" [ "Person"; "Student" ]);
  let v1 =
    Tse_core.Tsem.evolve tsem ~view:"VS"
      (Tse_core.Change.Add_attribute
         { cls = "Student"; def = Tse_core.Change.attr "credits" Value.TInt })
  in
  let student' = Tse_views.View_schema.cid_of_exn v1 "Student" in
  Indexes.ensure idx student' "credits";
  let o =
    Tse_update.Generic.create u.db student'
      ~init:[ ("credits", Value.Int 12); ("age", Value.Int 20) ]
  in
  let hits = Engine.select u.db idx student' Expr.(attr "credits" === int 12) in
  Alcotest.(check bool) "indexed select on evolved class" true
    (Oid.Set.mem o hits);
  Alcotest.(check (list string)) "consistent" [] (Database.check u.db)

let suite =
  [
    Alcotest.test_case "index build + lookup" `Quick test_index_build_and_lookup;
    Alcotest.test_case "index maintenance on events" `Quick
      test_index_maintenance;
    Alcotest.test_case "index on a virtual class" `Quick
      test_index_on_virtual_class;
    Alcotest.test_case "planner decisions" `Quick test_engine_plans;
    Alcotest.test_case "planner prefers the selective index" `Quick
      test_planner_prefers_selective_index;
    Alcotest.test_case "indexed results == scan results" `Quick
      test_engine_results_agree;
    Alcotest.test_case "engine across schema evolution" `Quick
      test_engine_after_evolution;
  ]
