(* Tests for the schema layer: expressions, properties, the is-a DAG and
   full-type computation with the paper's conflict rules. *)

open Tse_store
open Tse_schema

let check = Alcotest.check
let vpp = Alcotest.testable Value.pp Value.equal

(* A tiny standalone graph for structural tests. *)
let graph () = Schema_graph.create ~gen:(Oid.Gen.create ())

let stored = Prop.stored ~origin:(Oid.of_int 0)

let test_expr_eval () =
  let slots = [ ("age", Value.Int 30); ("name", Value.String "ann") ] in
  let env =
    {
      Expr.self = Oid.of_int 1;
      get =
        (fun n ->
          match List.assoc_opt n slots with
          | Some v -> v
          | None -> raise (Expr.Unknown_property n));
      member_of = (fun c -> c = "Person");
    }
  in
  let open Expr in
  check vpp "arith" (Value.Int 35) (eval env (Arith (Add, attr "age", int 5)));
  check vpp "cmp" (Value.Bool true) (eval env (attr "age" >= int 18));
  check vpp "and/or" (Value.Bool true)
    (eval env ((attr "age" > int 40) || (attr "name" === str "ann")));
  check vpp "in_class" (Value.Bool true) (eval env (In_class "Person"));
  check vpp "in_class neg" (Value.Bool false) (eval env (In_class "Robot"));
  check vpp "if" (Value.String "adult")
    (eval env (If (attr "age" >= int 18, str "adult", str "minor")));
  check vpp "self" (Value.Ref (Oid.of_int 1)) (eval env Self);
  check vpp "is_null" (Value.Bool false) (eval env (Is_null (attr "age")));
  Alcotest.check_raises "unknown property" (Expr.Unknown_property "zz")
    (fun () -> ignore (eval env (attr "zz")));
  (try
     ignore (eval env (Arith (Add, attr "name", int 1)));
     Alcotest.fail "expected type error"
   with Expr.Type_error _ -> ());
  (try
     ignore (eval env (Arith (Div, int 1, int 0)));
     Alcotest.fail "expected division by zero"
   with Expr.Type_error _ -> ())

let test_expr_null_semantics () =
  let env =
    { Expr.self = Oid.of_int 1;
      get = (fun _ -> Value.Null);
      member_of = (fun _ -> false) }
  in
  let open Expr in
  check vpp "null = null" (Value.Bool true) (eval env (attr "x" === Const Value.Null));
  check vpp "null <> 1" (Value.Bool true) (eval env (attr "x" <> int 1));
  Alcotest.(check bool) "null predicate is false" false
    (eval_bool env (attr "x"));
  (try
     ignore (eval env (attr "x" < int 1));
     Alcotest.fail "expected type error on ordering null"
   with Expr.Type_error _ -> ())

let test_expr_utils () =
  let open Expr in
  let e = (attr "a" > int 1) && In_class "C" && Is_null (attr "b") in
  check Alcotest.(list string) "free attrs" [ "a"; "b" ] (free_attrs e);
  check Alcotest.(list string) "classes" [ "C" ] (referenced_classes e);
  Alcotest.(check bool) "equal reflexive" true (equal e e);
  Alcotest.(check bool) "not equal" false (equal e (attr "a" > int 2));
  let renamed = rename_attr ~old_name:"a" ~new_name:"z" e in
  check Alcotest.(list string) "renamed" [ "b"; "z" ] (free_attrs renamed)

let test_prop_identity () =
  let p = stored "age" Value.TInt in
  let q = Prop.rename p "years" in
  Alcotest.(check bool) "rename keeps identity" true (Prop.same_prop p q);
  let r = Prop.with_fresh_uid p in
  Alcotest.(check bool) "fresh uid distinct" false (Prop.same_prop p r);
  Alcotest.(check bool) "signature equal despite uid" true
    (Prop.signature_equal p r);
  Alcotest.(check bool) "renamed not signature equal" false
    (Prop.signature_equal p q)

let test_graph_edges () =
  let g = graph () in
  let a = Schema_graph.register_base g ~name:"A" ~props:[] ~supers:[] in
  let b = Schema_graph.register_base g ~name:"B" ~props:[] ~supers:[ a ] in
  let c = Schema_graph.register_base g ~name:"C" ~props:[] ~supers:[ b ] in
  Alcotest.(check bool) "A ancestor of C" true
    (Schema_graph.is_strict_ancestor g ~anc:a ~desc:c);
  Alcotest.(check bool) "C not ancestor of A" false
    (Schema_graph.is_strict_ancestor g ~anc:c ~desc:a);
  check Alcotest.int "descendants of A" 2
    (Oid.Set.cardinal (Schema_graph.descendants g a));
  (* cycle rejection *)
  (try
     Schema_graph.add_edge g ~sup:c ~sub:a;
     Alcotest.fail "expected cycle rejection"
   with Invalid_argument _ -> ());
  (* root handling: removing B's only parent edge reattaches to root *)
  Schema_graph.remove_edge g ~sup:a ~sub:b;
  check Alcotest.(list string)
    "B reattached to root"
    [ "Object" ]
    (List.map (Schema_graph.name_of g) (Schema_graph.supers g b));
  (* adding a real superclass drops the root edge *)
  Schema_graph.add_edge g ~sup:a ~sub:b;
  check Alcotest.(list string) "root edge dropped" [ "A" ]
    (List.map (Schema_graph.name_of g) (Schema_graph.supers g b));
  Alcotest.(check (list string)) "invariants hold" [] (Invariants.check g)

let test_graph_remove_class () =
  let g = graph () in
  let a = Schema_graph.register_base g ~name:"A" ~props:[] ~supers:[] in
  let b = Schema_graph.register_base g ~name:"B" ~props:[] ~supers:[ a ] in
  let c = Schema_graph.register_base g ~name:"C" ~props:[] ~supers:[ b ] in
  Schema_graph.remove g b;
  Alcotest.(check bool) "B gone" false (Schema_graph.mem g b);
  (* C must not be left disconnected *)
  check Alcotest.(list string) "C reattached to root" [ "Object" ]
    (List.map (Schema_graph.name_of g) (Schema_graph.supers g c));
  Alcotest.(check (list string)) "invariants hold" [] (Invariants.check g)

let test_graph_topo_and_paths () =
  let g = graph () in
  let a = Schema_graph.register_base g ~name:"A" ~props:[] ~supers:[] in
  let b = Schema_graph.register_base g ~name:"B" ~props:[] ~supers:[ a ] in
  let c = Schema_graph.register_base g ~name:"C" ~props:[] ~supers:[ a ] in
  let d = Schema_graph.register_base g ~name:"D" ~props:[] ~supers:[ b; c ] in
  let order = Schema_graph.topo_order g in
  let pos x = Option.get (List.find_index (Oid.equal x) order) in
  Alcotest.(check bool) "a before b" true (pos a < pos b);
  Alcotest.(check bool) "b before d" true (pos b < pos d);
  Alcotest.(check bool) "c before d" true (pos c < pos d);
  let paths = Schema_graph.paths_down g ~src:a ~dst:d in
  check Alcotest.int "two diamond paths" 2 (List.length paths);
  List.iter
    (fun p -> check Alcotest.int "path length" 3 (List.length p))
    paths;
  Alcotest.(check bool) "redundant edge detection" false
    (Schema_graph.is_redundant_edge g ~sup:a ~sub:b);
  Schema_graph.add_edge g ~sup:a ~sub:d;
  Alcotest.(check bool) "a->d redundant" true
    (Schema_graph.is_redundant_edge g ~sup:a ~sub:d)

let test_graph_copy_isolation () =
  let g = graph () in
  let a = Schema_graph.register_base g ~name:"A" ~props:[] ~supers:[] in
  let g' = Schema_graph.copy g in
  let _b = Schema_graph.register_base g' ~name:"B" ~props:[] ~supers:[ a ] in
  (Schema_graph.find_exn g' a).Klass.name <- "Renamed";
  check Alcotest.string "original untouched" "A" (Schema_graph.name_of g a);
  check Alcotest.int "original size" 2 (Schema_graph.size g);
  check Alcotest.int "copy size" 3 (Schema_graph.size g')

let test_inheritance_basic () =
  let g = graph () in
  let a =
    Schema_graph.register_base g ~name:"A"
      ~props:[ stored "x" Value.TInt ]
      ~supers:[]
  in
  let b =
    Schema_graph.register_base g ~name:"B"
      ~props:[ stored "y" Value.TInt ]
      ~supers:[ a ]
  in
  check Alcotest.(list string) "full inheritance" [ "x"; "y" ]
    (Type_info.prop_names g b);
  Alcotest.(check bool) "subtype" true (Type_info.subtype_of g ~sub:b ~sup:a);
  Alcotest.(check bool) "not supertype" false
    (Type_info.subtype_of g ~sub:a ~sup:b)

let test_inheritance_override () =
  let g = graph () in
  let a =
    Schema_graph.register_base g ~name:"A"
      ~props:[ stored "x" Value.TInt ]
      ~supers:[]
  in
  let b =
    Schema_graph.register_base g ~name:"B"
      ~props:[ stored "x" Value.TString ]
      ~supers:[ a ]
  in
  let c = Schema_graph.register_base g ~name:"C" ~props:[] ~supers:[ b ] in
  (* local override wins and propagates to subclasses *)
  (match Type_info.find_usable g b "x" with
  | Some p -> Alcotest.(check bool) "B sees own x" true (p.Prop.origin = b)
  | None -> Alcotest.fail "x unresolved at B");
  (match Type_info.find_usable g c "x" with
  | Some p -> Alcotest.(check bool) "C inherits B's x" true (p.Prop.origin = b)
  | None -> Alcotest.fail "x unresolved at C");
  (* the suppressed candidate from A is still discoverable *)
  let cands = Type_info.inherited_candidates g b "x" in
  check Alcotest.int "suppressed candidate" 1 (List.length cands);
  (match cands with
  | [ p ] -> Alcotest.(check bool) "candidate from A" true (p.Prop.origin = a)
  | _ -> Alcotest.fail "expected one candidate")

let test_inheritance_diamond_no_conflict () =
  let g = graph () in
  let a =
    Schema_graph.register_base g ~name:"A"
      ~props:[ stored "x" Value.TInt ]
      ~supers:[]
  in
  let b = Schema_graph.register_base g ~name:"B" ~props:[] ~supers:[ a ] in
  let c = Schema_graph.register_base g ~name:"C" ~props:[] ~supers:[ a ] in
  let d = Schema_graph.register_base g ~name:"D" ~props:[] ~supers:[ b; c ] in
  (* one property along two paths is not a conflict *)
  match Type_info.find g d "x" with
  | Some (Type_info.Single _) -> ()
  | Some (Type_info.Conflict _) -> Alcotest.fail "diamond must not conflict"
  | None -> Alcotest.fail "x lost in diamond"

let test_inheritance_real_conflict () =
  let g = graph () in
  let a =
    Schema_graph.register_base g ~name:"A"
      ~props:[ stored "x" Value.TInt ]
      ~supers:[]
  in
  let b =
    Schema_graph.register_base g ~name:"B"
      ~props:[ stored "x" Value.TString ]
      ~supers:[]
  in
  let c = Schema_graph.register_base g ~name:"C" ~props:[] ~supers:[ a; b ] in
  (match Type_info.find g c "x" with
  | Some (Type_info.Conflict ps) ->
    check Alcotest.int "two candidates" 2 (List.length ps)
  | Some (Type_info.Single _) -> Alcotest.fail "expected conflict"
  | None -> Alcotest.fail "x missing");
  Alcotest.(check bool) "not usable while ambiguous" true
    (Type_info.find_usable g c "x" = None);
  (* user disambiguates by renaming one candidate at its origin *)
  let ka = Schema_graph.find_exn g a in
  let px = Option.get (Klass.local_prop ka "x") in
  Klass.replace_local_prop ka (Prop.rename px "ax");
  Klass.remove_local_prop ka "x";
  (match Type_info.find g c "x" with
  | Some (Type_info.Single p) ->
    Alcotest.(check bool) "B's survives" true (p.Prop.origin = b)
  | _ -> Alcotest.fail "conflict should be resolved");
  match Type_info.find g c "ax" with
  | Some (Type_info.Single _) -> ()
  | _ -> Alcotest.fail "renamed candidate visible"

let test_promoted_priority () =
  let g = graph () in
  (* Simulates the Section 6.2.3 situation: a promoted definition takes
     priority over another inherited same-named property. *)
  let a =
    Schema_graph.register_base g ~name:"A"
      ~props:[ stored "x" Value.TInt ]
      ~supers:[]
  in
  ignore a;
  let promoted = Prop.promote (stored "x" Value.TString) in
  let b =
    Schema_graph.register_base g ~name:"B" ~props:[ promoted ] ~supers:[]
  in
  let c = Schema_graph.register_base g ~name:"C" ~props:[] ~supers:[ a; b ] in
  match Type_info.find g c "x" with
  | Some (Type_info.Single p) ->
    Alcotest.(check bool) "promoted wins" true (p.Prop.origin = b)
  | _ -> Alcotest.fail "promoted property should resolve the conflict"

let test_uppermost_in_view () =
  let g = graph () in
  let a =
    Schema_graph.register_base g ~name:"A"
      ~props:[ stored "x" Value.TInt ]
      ~supers:[]
  in
  let b = Schema_graph.register_base g ~name:"B" ~props:[] ~supers:[ a ] in
  let c = Schema_graph.register_base g ~name:"C" ~props:[] ~supers:[ b ] in
  let view_all = Oid.Set.of_list [ a; b; c ] in
  let view_bc = Oid.Set.of_list [ b; c ] in
  Alcotest.(check bool) "A uppermost in full view" true
    (Type_info.is_uppermost_in g ~view:view_all a "x");
  Alcotest.(check bool) "B not uppermost in full view" false
    (Type_info.is_uppermost_in g ~view:view_all b "x");
  (* paper: local is view-relative — B is uppermost when A is outside *)
  Alcotest.(check bool) "B uppermost when A hidden" true
    (Type_info.is_uppermost_in g ~view:view_bc b "x")

let test_type_signature_stability () =
  let g = graph () in
  let a =
    Schema_graph.register_base g ~name:"A"
      ~props:[ stored "x" Value.TInt; Prop.method_ ~origin:(Oid.of_int 0) "m" (Expr.int 1) ]
      ~supers:[]
  in
  let b = Schema_graph.register_base g ~name:"B" ~props:[] ~supers:[ a ] in
  Alcotest.(check bool) "same type A B (B adds nothing)" true
    (Type_info.type_equal g a b);
  let c =
    Schema_graph.register_base g ~name:"Cc"
      ~props:[ stored "y" Value.TInt ]
      ~supers:[ a ]
  in
  Alcotest.(check bool) "C differs" false (Type_info.type_equal g a c)

(* ------------------------------------------------------------------ *)
(* Invariants.check: one crafted violation per documented clause.      *)
(* The mutators (add_edge, register_base, add_local_prop) refuse to    *)
(* produce these states, so each is crafted by direct record surgery,  *)
(* and the test asserts the human-readable message names the           *)
(* offending class.                                                    *)
(* ------------------------------------------------------------------ *)

let problem_mentioning needle problems =
  let contains hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    nl = 0 || go 0
  in
  Alcotest.(check bool)
    (Printf.sprintf "some problem mentions %S (got: %s)" needle
       (String.concat " | " problems))
    true
    (List.exists contains problems)

let two_classes () =
  let g = graph () in
  let a = Schema_graph.register_base g ~name:"A" ~props:[] ~supers:[] in
  let b = Schema_graph.register_base g ~name:"B" ~props:[] ~supers:[ a ] in
  (g, Schema_graph.find_exn g a, Schema_graph.find_exn g b)

let test_invariant_cycle () =
  let g, ka, kb = two_classes () in
  (* close the loop A -> B -> A behind add_edge's back *)
  ka.Klass.supers <- kb.Klass.cid :: ka.Klass.supers;
  kb.Klass.subs <- ka.Klass.cid :: kb.Klass.subs;
  problem_mentioning "cycle through class A" (Invariants.check g)

let test_invariant_missing_superclass () =
  let g, _, kb = two_classes () in
  kb.Klass.supers <- Oid.of_int 9999 :: kb.Klass.supers;
  problem_mentioning "B lists missing superclass" (Invariants.check g)

let test_invariant_missing_subclass () =
  let g, ka, _ = two_classes () in
  ka.Klass.subs <- Oid.of_int 9999 :: ka.Klass.subs;
  problem_mentioning "A lists missing subclass" (Invariants.check g)

let test_invariant_asymmetric_super_edge () =
  let g, ka, kb = two_classes () in
  (* B claims A as a superclass twice is fine; instead drop B from A's
     subs so the super-side listing has no matching sub-side entry *)
  ka.Klass.subs <- List.filter (fun c -> not (Oid.equal c kb.Klass.cid)) ka.Klass.subs;
  problem_mentioning "edge A->B not symmetric" (Invariants.check g)

let test_invariant_asymmetric_sub_edge () =
  let g, ka, kb = two_classes () in
  kb.Klass.supers <-
    List.filter (fun c -> not (Oid.equal c ka.Klass.cid)) kb.Klass.supers;
  (* B now looks disconnected too; the asymmetry clause must still fire *)
  problem_mentioning "edge A->B not symmetric" (Invariants.check g)

let test_invariant_root_with_supers () =
  let g, ka, _ = two_classes () in
  let kroot = Schema_graph.find_exn g (Schema_graph.root g) in
  kroot.Klass.supers <- [ ka.Klass.cid ];
  ka.Klass.subs <- Schema_graph.root g :: ka.Klass.subs;
  problem_mentioning "root has superclasses" (Invariants.check g)

let test_invariant_disconnected () =
  let g, ka, kb = two_classes () in
  kb.Klass.supers <- [];
  ka.Klass.subs <- List.filter (fun c -> not (Oid.equal c kb.Klass.cid)) ka.Klass.subs;
  problem_mentioning "class B is disconnected" (Invariants.check g)

let test_invariant_not_under_root () =
  let g, ka, _kb = two_classes () in
  (* detach A from the root but keep B -> A intact: A is flagged as
     disconnected, and B as not a descendant of the root *)
  let kroot = Schema_graph.find_exn g (Schema_graph.root g) in
  ka.Klass.supers <- [];
  kroot.Klass.subs <-
    List.filter (fun c -> not (Oid.equal c ka.Klass.cid)) kroot.Klass.subs;
  let problems = Invariants.check g in
  problem_mentioning "class A is disconnected" problems;
  problem_mentioning "class B is not a descendant of the root" problems

let test_invariant_duplicate_name () =
  let g, _, kb = two_classes () in
  kb.Klass.name <- "A";
  problem_mentioning "duplicate class name A" (Invariants.check g)

let test_invariant_missing_virtual_source () =
  let g, ka, _ = two_classes () in
  ignore
    (Schema_graph.register_virtual g ~name:"V"
       (Klass.Select (ka.Klass.cid, Expr.bool true))
       []);
  Schema_graph.remove g ka.Klass.cid;
  problem_mentioning "virtual class V has missing source" (Invariants.check g)

let test_invariant_duplicate_local_prop () =
  let g, ka, _ = two_classes () in
  let p = stored "x" Value.TInt in
  ka.Klass.local_props <- [ p; p ];
  problem_mentioning "class A defines property x twice" (Invariants.check g)

let test_invariant_clean_graph_has_no_problems () =
  let g, _, _ = two_classes () in
  Alcotest.(check (list string)) "clean" [] (Invariants.check g)

let suite =
  [
    Alcotest.test_case "expr evaluation" `Quick test_expr_eval;
    Alcotest.test_case "expr null semantics" `Quick test_expr_null_semantics;
    Alcotest.test_case "expr utilities" `Quick test_expr_utils;
    Alcotest.test_case "property identity" `Quick test_prop_identity;
    Alcotest.test_case "graph edges / cycles / root" `Quick test_graph_edges;
    Alcotest.test_case "graph class removal" `Quick test_graph_remove_class;
    Alcotest.test_case "graph topo order and paths" `Quick
      test_graph_topo_and_paths;
    Alcotest.test_case "graph copy isolation" `Quick test_graph_copy_isolation;
    Alcotest.test_case "full inheritance" `Quick test_inheritance_basic;
    Alcotest.test_case "override blocks propagation" `Quick
      test_inheritance_override;
    Alcotest.test_case "diamond is not a conflict" `Quick
      test_inheritance_diamond_no_conflict;
    Alcotest.test_case "real conflict needs renaming" `Quick
      test_inheritance_real_conflict;
    Alcotest.test_case "promoted definition has priority" `Quick
      test_promoted_priority;
    Alcotest.test_case "uppermost-in-view (view-relative local)" `Quick
      test_uppermost_in_view;
    Alcotest.test_case "type signatures" `Quick test_type_signature_stability;
    Alcotest.test_case "invariant: cycle" `Quick test_invariant_cycle;
    Alcotest.test_case "invariant: missing superclass" `Quick
      test_invariant_missing_superclass;
    Alcotest.test_case "invariant: missing subclass" `Quick
      test_invariant_missing_subclass;
    Alcotest.test_case "invariant: asymmetric edge (super side)" `Quick
      test_invariant_asymmetric_super_edge;
    Alcotest.test_case "invariant: asymmetric edge (sub side)" `Quick
      test_invariant_asymmetric_sub_edge;
    Alcotest.test_case "invariant: root with superclasses" `Quick
      test_invariant_root_with_supers;
    Alcotest.test_case "invariant: disconnected class" `Quick
      test_invariant_disconnected;
    Alcotest.test_case "invariant: not a descendant of the root" `Quick
      test_invariant_not_under_root;
    Alcotest.test_case "invariant: duplicate class name" `Quick
      test_invariant_duplicate_name;
    Alcotest.test_case "invariant: missing virtual source" `Quick
      test_invariant_missing_virtual_source;
    Alcotest.test_case "invariant: duplicate local property" `Quick
      test_invariant_duplicate_local_prop;
    Alcotest.test_case "invariant: clean graph reports nothing" `Quick
      test_invariant_clean_graph_has_no_problems;
  ]
