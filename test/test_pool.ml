(* Domain pool: chunk decomposition, exactly-once execution, result
   ordering, exception propagation (pool stays usable afterwards), and a
   multi-domain hammer over the striped metrics registry asserting no
   lost increments. *)

module Pool = Tse_pool.Pool
module Metrics = Tse_obs.Metrics

let test_chunk_ranges () =
  (* every decomposition covers [0, n) exactly, contiguous ascending *)
  List.iter
    (fun (size, n) ->
      let chunks = Pool.chunk_ranges ~size ~n in
      let expect_start = ref 0 in
      List.iter
        (fun (lo, hi) ->
          Alcotest.(check int)
            (Printf.sprintf "contiguous at %d (size=%d n=%d)" lo size n)
            !expect_start lo;
          Alcotest.(check bool)
            "nonempty chunk" true (hi > lo);
          expect_start := hi)
        chunks;
      Alcotest.(check int)
        (Printf.sprintf "covers n (size=%d n=%d)" size n)
        n !expect_start)
    [ (1, 10); (2, 10); (4, 100); (8, 7); (3, 1); (7, 1000); (64, 65) ];
  (* size 1 must be a single chunk: the inline sequential path *)
  Alcotest.(check (list (pair int int)))
    "size 1 is one chunk" [ (0, 42) ]
    (Pool.chunk_ranges ~size:1 ~n:42);
  Alcotest.(check (list (pair int int)))
    "n = 0 is no chunks" [] (Pool.chunk_ranges ~size:4 ~n:0)

let test_run_exactly_once () =
  let pool = Pool.create 4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let n = 10_000 in
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      Pool.run pool ~n (fun ~lo ~hi ->
          for i = lo to hi - 1 do
            Atomic.incr hits.(i)
          done);
      Array.iteri
        (fun i c ->
          if Atomic.get c <> 1 then
            Alcotest.failf "index %d executed %d times" i (Atomic.get c))
        hits)

let test_map_chunks_ordered () =
  let pool = Pool.create 4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      for _ = 1 to 20 do
        let chunks = Pool.map_chunks pool ~n:1_000 (fun ~lo ~hi -> (lo, hi)) in
        Alcotest.(check (list (pair int int)))
          "results come back in ascending chunk order"
          (Pool.chunk_ranges ~size:4 ~n:1_000)
          chunks
      done)

let test_exception_propagates () =
  let pool = Pool.create 3 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let ran = Atomic.make 0 in
      (match
         Pool.run pool ~n:5_000 (fun ~lo ~hi ->
             ignore (hi : int);
             Atomic.incr ran;
             if lo = 0 then failwith "boom")
       with
      | () -> Alcotest.fail "expected the chunk exception to re-raise"
      | exception Failure m -> Alcotest.(check string) "message" "boom" m);
      (* all chunks still ran: the failure did not abandon work *)
      Alcotest.(check int)
        "every chunk executed despite the failure"
        (List.length (Pool.chunk_ranges ~size:3 ~n:5_000))
        (Atomic.get ran);
      (* and the pool is reusable afterwards *)
      let total = Atomic.make 0 in
      Pool.run pool ~n:5_000 (fun ~lo ~hi ->
          ignore (Atomic.fetch_and_add total (hi - lo)));
      Alcotest.(check int) "pool reusable after exception" 5_000
        (Atomic.get total))

let test_size_one_inline () =
  let pool = Pool.create 1 in
  Alcotest.(check int) "size clamps to 1" 1 (Pool.size pool);
  (* a size-1 pool runs on the caller's domain: effects are immediately
     visible without any synchronization *)
  let acc = ref [] in
  Pool.run pool ~n:10 (fun ~lo ~hi -> acc := (lo, hi) :: !acc);
  Alcotest.(check (list (pair int int))) "single inline chunk" [ (0, 10) ] !acc;
  Pool.shutdown pool

let test_metrics_hammer () =
  (* Satellite (a): hammer one counter, one labeled counter and one
     histogram from every domain of a pool and assert no increment is
     lost — the registry is striped/atomic, not lock-per-update. *)
  let pool = Pool.create 4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let c = Metrics.counter "test_pool.hammer" in
      let lab = Metrics.counter ~labels:[ ("k", "v") ] "test_pool.hammer_l" in
      let h = Metrics.histogram ~buckets:[ 1.0; 10.0 ] "test_pool.hammer_h" in
      let c0 = Metrics.counter_value c in
      let l0 = Metrics.counter_value lab in
      let n = 100_000 in
      Pool.run pool ~n (fun ~lo ~hi ->
          for i = lo to hi - 1 do
            Metrics.incr c;
            if i land 1 = 0 then Metrics.incr lab;
            if i land 1023 = 0 then Metrics.observe h 5.0
          done);
      Alcotest.(check int) "no lost counter increments" (c0 + n)
        (Metrics.counter_value c);
      Alcotest.(check int)
        "no lost labeled increments" (l0 + (n / 2))
        (Metrics.counter_value lab))

let suite =
  [
    Alcotest.test_case "chunk_ranges covers [0,n)" `Quick test_chunk_ranges;
    Alcotest.test_case "run executes each index once" `Quick
      test_run_exactly_once;
    Alcotest.test_case "map_chunks is chunk-ordered" `Quick
      test_map_chunks_ordered;
    Alcotest.test_case "exceptions re-raise, pool survives" `Quick
      test_exception_propagates;
    Alcotest.test_case "size-1 pool is inline" `Quick test_size_one_inline;
    Alcotest.test_case "metrics survive a multi-domain hammer" `Quick
      test_metrics_hammer;
  ]
