(* Telemetry plane: percentile accessors, the ring-buffer sampler
   (including under concurrent mutation from worker domains), the stats
   endpoint, and the stall watchdog.

   This suite is registered LAST in test_main: the sampler's
   reset-clamp tests call [Metrics.reset], which zeroes the global
   registry other suites read deltas from. *)

module Metrics = Tse_obs.Metrics
module Timeseries = Tse_obs.Timeseries
module Telemetry_server = Tse_obs.Telemetry_server
module Watchdog = Tse_obs.Watchdog
module Log = Tse_obs.Log

let feq ?(eps = 1e-6) a b = Float.abs (a -. b) <= eps

(* ---- Histogram.percentile ------------------------------------------- *)

let test_percentile_uniform () =
  (* 1..100 against decade buckets: interpolation is exact on the grid *)
  let obs = List.init 100 (fun i -> float_of_int (i + 1)) in
  let buckets = List.init 10 (fun i -> float_of_int ((i + 1) * 10)) in
  let h = Metrics.Histogram.of_observations ~buckets obs in
  Alcotest.(check int) "count" 100 h.Metrics.h_count;
  Alcotest.(check bool) "sum" true (feq h.Metrics.h_sum 5050.);
  Alcotest.(check bool) "p50" true (feq h.Metrics.h_p50 50.);
  Alcotest.(check bool) "p95" true (feq h.Metrics.h_p95 95.);
  Alcotest.(check bool) "p99" true (feq h.Metrics.h_p99 99.);
  Alcotest.(check bool)
    "p10" true
    (feq (Metrics.Histogram.percentile_of h 0.10) 10.);
  Alcotest.(check bool)
    "p100 clamps to last bound" true
    (feq (Metrics.Histogram.percentile_of h 1.0) 100.)

let test_percentile_edges () =
  let empty = Metrics.Histogram.of_observations [] in
  Alcotest.(check bool) "empty p50 is 0" true (feq empty.Metrics.h_p50 0.);
  (* everything beyond the last bound: the +inf bucket reports the last
     finite bound as a lower bound on the truth *)
  let inf = Metrics.Histogram.of_observations ~buckets:[ 1.; 2. ] [ 5.; 6.; 7. ] in
  Alcotest.(check int) "all in +inf" 3 inf.Metrics.h_inf;
  Alcotest.(check bool) "p50 reports last bound" true (feq inf.Metrics.h_p50 2.);
  Alcotest.(check bool) "p99 reports last bound" true (feq inf.Metrics.h_p99 2.)

let test_percentile_registry_handle () =
  let h = Metrics.histogram ~buckets:[ 10.; 20.; 40. ] "tstel.lat" in
  List.iter (Metrics.observe h) [ 5.; 15.; 15.; 35. ];
  let p50 = Metrics.Histogram.percentile h 0.5 in
  Alcotest.(check bool)
    "p50 inside the 10..20 bucket" true
    (p50 >= 10. && p50 <= 20.);
  (* the snapshot caches the same estimates the accessor computes *)
  let snap =
    List.find_map
      (fun s ->
        match (Metrics.key_of s, s.Metrics.s_value) with
        | "tstel.lat", Metrics.Histogram snap -> Some snap
        | _ -> None)
      (Metrics.snapshot ())
  in
  match snap with
  | None -> Alcotest.fail "tstel.lat not in snapshot"
  | Some snap ->
    Alcotest.(check bool)
      "snapshot p50 = accessor p50" true
      (feq snap.Metrics.h_p50 p50)

(* ---- Timeseries sampler --------------------------------------------- *)

let strictly_increasing pts =
  let rec go = function
    | (a, _) :: ((b, _) :: _ as rest) -> a < b && go rest
    | _ -> true
  in
  go pts

let test_sampler_counter_rates () =
  let c = Metrics.counter "tstel.ops" in
  let ts = Timeseries.create ~capacity:8 () in
  Timeseries.sample ts;
  (* first tick is baseline-only *)
  Alcotest.(check (list (pair int (float 0.))))
    "no rate point from the baseline tick" []
    (Timeseries.points ts "tstel.ops");
  for _ = 1 to 20 do
    Metrics.add c 5;
    Timeseries.sample ts
  done;
  let pts = Timeseries.points ts "tstel.ops" in
  Alcotest.(check int) "ring keeps the last [capacity]" 8 (List.length pts);
  Alcotest.(check bool) "timestamps strictly increasing" true
    (strictly_increasing pts);
  Alcotest.(check bool) "rates positive" true
    (List.for_all (fun (_, v) -> v > 0.) pts)

let test_sampler_reset_clamps () =
  let c = Metrics.counter "tstel.reset" in
  let ts = Timeseries.create () in
  Timeseries.sample ts;
  Metrics.add c 1000;
  Timeseries.sample ts;
  Metrics.reset ();
  (* the counter regressed to 0: the delta is clamped, never negative *)
  Timeseries.sample ts;
  Metrics.add c 3;
  Timeseries.sample ts;
  let pts = Timeseries.points ts "tstel.reset" in
  Alcotest.(check bool) "no negative rate across a reset" true
    (List.for_all (fun (_, v) -> v >= 0.) pts);
  match Timeseries.last ts "tstel.reset" with
  | Some (_, v) -> Alcotest.(check bool) "re-baselined after reset" true (v > 0.)
  | None -> Alcotest.fail "series disappeared"

let test_sampler_gauge_and_quantiles () =
  let g = Metrics.gauge "tstel.g" in
  let h = Metrics.histogram ~buckets:[ 1.; 10.; 100. ] "tstel.h" in
  let ts = Timeseries.create () in
  Metrics.set_gauge g 3.5;
  Timeseries.sample ts;
  Metrics.observe h 5.;
  Metrics.observe h 50.;
  Timeseries.sample ts;
  (match Timeseries.last ts "tstel.g" with
  | Some (_, v) -> Alcotest.(check bool) "gauge value" true (feq v 3.5)
  | None -> Alcotest.fail "gauge series missing");
  Alcotest.(check bool) "p50 series appears once non-empty" true
    (Timeseries.points ts "tstel.h.p50" <> []);
  (match Timeseries.last ts "tstel.h.rate" with
  | Some (_, v) -> Alcotest.(check bool) "observation rate > 0" true (v > 0.)
  | None -> Alcotest.fail "histogram rate series missing");
  Alcotest.(check bool) "series_names sees the sampler's series" true
    (List.mem "tstel.h.p95" (Timeseries.series_names ts))

(* The satellite hammer: worker domains mutate the registry while the
   background sampler ticks at full speed; every sample must stay
   monotone in time with non-negative rates. *)
let test_sampler_hammer_multidomain () =
  let c = Metrics.counter "tstel.hammer" in
  let h = Metrics.histogram ~buckets:[ 1.; 10. ] "tstel.hammer_h" in
  let ts = Timeseries.create () in
  Timeseries.start ~interval_ms:2 ts;
  Alcotest.(check bool) "running" true (Timeseries.running ts);
  let deadline = Unix.gettimeofday () +. 0.15 in
  let workers =
    List.init 3 (fun w ->
        Domain.spawn (fun () ->
            while Unix.gettimeofday () < deadline do
              Metrics.add c (1 + w);
              Metrics.observe h (float_of_int w)
            done))
  in
  List.iter Domain.join workers;
  Timeseries.stop ts;
  Alcotest.(check bool) "stopped" false (Timeseries.running ts);
  let pts = Timeseries.points ts "tstel.hammer" in
  Alcotest.(check bool) "sampled while hammered" true (List.length pts >= 2);
  Alcotest.(check bool) "monotone timestamps" true (strictly_increasing pts);
  Alcotest.(check bool) "rates never negative" true
    (List.for_all (fun (_, v) -> v >= 0.) pts);
  let hr = Timeseries.points ts "tstel.hammer_h.rate" in
  Alcotest.(check bool) "histogram rates never negative" true
    (List.for_all (fun (_, v) -> v >= 0.) hr);
  (* stop is idempotent and a stopped sampler still reads *)
  Timeseries.stop ts;
  Alcotest.(check bool) "readable after stop" true
    (Timeseries.points ts "tstel.hammer" = pts)

(* qcheck: any interleaving of bumps, ticks and registry resets keeps
   every series monotone in time with non-negative rates. *)
let prop_sampler_monotone_nonneg =
  QCheck.Test.make ~count:30
    ~name:"sampler: monotone time, non-negative rates under random ops"
    QCheck.(list (pair (int_bound 2) (int_bound 100)))
    (fun ops ->
      let c = Metrics.counter "tstel.prop" in
      let ts = Timeseries.create ~capacity:16 () in
      Timeseries.sample ts;
      List.iter
        (fun (op, amt) ->
          match op with
          | 0 -> Metrics.add c amt
          | 1 -> Timeseries.sample ts
          | _ -> Metrics.reset ())
        ops;
      Timeseries.sample ts;
      let pts = Timeseries.points ts "tstel.prop" in
      strictly_increasing pts && List.for_all (fun (_, v) -> v >= 0.) pts)

let test_timeseries_json_shape () =
  let c = Metrics.counter "tstel.json" in
  let ts = Timeseries.create () in
  Timeseries.sample ts;
  Metrics.add c 2;
  Timeseries.sample ts;
  let json = Timeseries.to_json ts in
  Alcotest.(check bool) "object" true (String.length json > 0 && json.[0] = '{');
  let has needle =
    let n = String.length needle and l = String.length json in
    let rec go i =
      i + n <= l && (String.sub json i n = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "interval_ms present" true (has "\"interval_ms\"");
  Alcotest.(check bool) "series array present" true (has "\"series\"");
  Alcotest.(check bool) "our series present" true (has "\"tstel.json\"")

(* ---- Telemetry server ----------------------------------------------- *)

let contains hay needle =
  let n = String.length needle and l = String.length hay in
  let rec go i = i + n <= l && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* Sandboxes without sockets are an expected environment: a bind error
   skips rather than fails. *)
let with_server k =
  let ts = Timeseries.create () in
  ignore (Metrics.counter "tstel.srv");
  Timeseries.sample ts;
  Metrics.incr (Metrics.counter "tstel.srv");
  Timeseries.sample ts;
  match Telemetry_server.start ~addr:"127.0.0.1:0" ~ts () with
  | Error e -> Printf.printf "  [skip] no sockets here: %s\n" e
  | Ok srv ->
    Fun.protect ~finally:(fun () -> Telemetry_server.stop srv) (fun () ->
        k (Telemetry_server.addr srv))

let test_server_metrics_endpoint () =
  with_server (fun addr ->
      match Telemetry_server.fetch ~addr ~path:"/metrics" with
      | Error e -> Alcotest.fail ("fetch /metrics: " ^ e)
      | Ok body ->
        Alcotest.(check bool) "non-empty" true (String.length body > 0);
        Alcotest.(check bool) "tse_-prefixed families" true
          (contains body "tse_");
        Alcotest.(check bool) "typed exposition" true (contains body "# TYPE");
        Alcotest.(check bool) "histograms expose buckets" true
          (contains body "_bucket{le=");
        Alcotest.(check bool) "mangled, not dotted" true
          (not (contains body "tse_tstel.srv")))

let test_server_series_and_rates () =
  with_server (fun addr ->
      (match Telemetry_server.fetch ~addr ~path:"/series" with
      | Error e -> Alcotest.fail ("fetch /series: " ^ e)
      | Ok body ->
        Alcotest.(check bool) "json object" true
          (String.length body > 0 && body.[0] = '{');
        Alcotest.(check bool) "has series" true (contains body "\"series\""));
      (match Telemetry_server.fetch ~addr ~path:"/rates" with
      | Error e -> Alcotest.fail ("fetch /rates: " ^ e)
      | Ok body -> Alcotest.(check bool) "ops/s row" true (contains body "ops/s"));
      match Telemetry_server.fetch ~addr ~path:"/nope" with
      | Error e -> Alcotest.(check bool) "404" true (contains e "404")
      | Ok _ -> Alcotest.fail "unknown route served 200")

let test_server_unix_socket () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tse_stats_%d.sock" (Unix.getpid ()))
  in
  let ts = Timeseries.create () in
  Timeseries.sample ts;
  match Telemetry_server.start ~addr:("unix:" ^ path) ~ts () with
  | Error e -> Printf.printf "  [skip] no unix sockets here: %s\n" e
  | Ok srv ->
    Fun.protect ~finally:(fun () -> Telemetry_server.stop srv) (fun () ->
        (match Telemetry_server.fetch ~addr:("unix:" ^ path) ~path:"/metrics" with
        | Error e -> Alcotest.fail ("fetch over unix socket: " ^ e)
        | Ok body ->
          Alcotest.(check bool) "exposition over AF_UNIX" true
            (contains body "tse_"));
        Alcotest.(check string) "addr echoes the path" ("unix:" ^ path)
          (Telemetry_server.addr srv));
    Alcotest.(check bool) "socket unlinked on stop" false (Sys.file_exists path)

(* ---- Watchdog ------------------------------------------------------- *)

let quiet_warnings k =
  let prev = Log.current_level () in
  Log.set_level Log.Error;
  Fun.protect ~finally:(fun () -> Log.set_level prev) k

let test_watchdog_fsync_stall () =
  quiet_warnings (fun () ->
      let before = Metrics.find_counter "watchdog.fsync_stalls" in
      let saved = Watchdog.fsync_stall_ms () in
      Watchdog.set_fsync_stall_ms 1.0;
      Watchdog.observe_fsync ~ms:0.2;
      Alcotest.(check int) "fast fsync: no stall" before
        (Metrics.find_counter "watchdog.fsync_stalls");
      Watchdog.observe_fsync ~ms:5.0;
      Alcotest.(check int) "slow fsync: W301 counted" (before + 1)
        (Metrics.find_counter "watchdog.fsync_stalls");
      Watchdog.set_fsync_stall_ms saved)

let test_watchdog_evolution_budget () =
  quiet_warnings (fun () ->
      let before = Metrics.find_counter "watchdog.slow_evolutions" in
      let saved = Watchdog.evolve_budget_ms () in
      Watchdog.set_evolve_budget_ms 0.1;
      let v =
        Watchdog.time_evolution ~view:"t" (fun () ->
            Unix.sleepf 0.002;
            41 + 1)
      in
      Alcotest.(check int) "thunk result passes through" 42 v;
      Alcotest.(check int) "over budget: W302 counted" (before + 1)
        (Metrics.find_counter "watchdog.slow_evolutions");
      (* the wrapper records and re-raises *)
      (match
         Watchdog.time_evolution ~view:"t" (fun () ->
             Unix.sleepf 0.002;
             failwith "boom")
       with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "exception swallowed");
      Alcotest.(check int) "failed evolution still recorded" (before + 2)
        (Metrics.find_counter "watchdog.slow_evolutions");
      Watchdog.set_evolve_budget_ms saved)

let test_watchdog_fuel_pressure () =
  quiet_warnings (fun () ->
      let before = Metrics.find_counter "watchdog.fuel_pressure" in
      Watchdog.fuel_pressure ~what:"test";
      Alcotest.(check int) "W303 counted" (before + 1)
        (Metrics.find_counter "watchdog.fuel_pressure"))

let suite =
  [
    Alcotest.test_case "percentiles: uniform grid" `Quick test_percentile_uniform;
    Alcotest.test_case "percentiles: empty and +inf" `Quick
      test_percentile_edges;
    Alcotest.test_case "percentiles: registry handle + snapshot" `Quick
      test_percentile_registry_handle;
    Alcotest.test_case "sampler: counter rates in a ring" `Quick
      test_sampler_counter_rates;
    Alcotest.test_case "sampler: reset clamps rates" `Quick
      test_sampler_reset_clamps;
    Alcotest.test_case "sampler: gauges and quantile series" `Quick
      test_sampler_gauge_and_quantiles;
    Alcotest.test_case "sampler: multi-domain hammer" `Quick
      test_sampler_hammer_multidomain;
    Qcheck_det.to_alcotest prop_sampler_monotone_nonneg;
    Alcotest.test_case "timeseries: json shape" `Quick test_timeseries_json_shape;
    Alcotest.test_case "server: /metrics exposition" `Quick
      test_server_metrics_endpoint;
    Alcotest.test_case "server: /series, /rates, 404" `Quick
      test_server_series_and_rates;
    Alcotest.test_case "server: unix socket" `Quick test_server_unix_socket;
    Alcotest.test_case "watchdog: fsync stall (W301)" `Quick
      test_watchdog_fsync_stall;
    Alcotest.test_case "watchdog: evolution budget (W302)" `Quick
      test_watchdog_evolution_budget;
    Alcotest.test_case "watchdog: fuel pressure (W303)" `Quick
      test_watchdog_fuel_pressure;
  ]
