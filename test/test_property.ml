(* Property-based tests: randomized schemas, populations and evolution
   traces, checked against the consistency oracle, the direct-modification
   oracle (Proposition A), view independence (Proposition B) and
   updatability (Theorem 1). *)

open Tse_store
open Tse_schema
open Tse_db
open Tse_core
open Tse_workload

(* -------------------------------------------------------------- *)
(* Generators                                                      *)
(* -------------------------------------------------------------- *)

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000)

(* A random primitive change that is *plausible* for the given schema —
   it may still be rejected; rejection must then agree across oracles. *)
let random_change rng (rs : Random_schema.t) =
  let g = Database.graph rs.db in
  let cls cid = Schema_graph.name_of g cid in
  let c1 = Random_schema.random_class rng rs in
  let c2 = Random_schema.random_class rng rs in
  match Random.State.int rng 8 with
  | 0 ->
    Change.Add_attribute
      {
        cls = cls c1;
        def = Change.attr (Printf.sprintf "n%d" (Random.State.int rng 1000)) Value.TInt;
      }
  | 1 -> begin
    match Random_schema.random_attr rng rs c1 with
    | Some a -> Change.Delete_attribute { cls = cls c1; attr_name = a }
    | None -> Change.Delete_class { cls = cls c1 }
  end
  | 2 ->
    Change.Add_method
      {
        cls = cls c1;
        method_name = Printf.sprintf "m%d" (Random.State.int rng 1000);
        body = Expr.int 1;
      }
  | 3 -> Change.Add_edge { sup = cls c1; sub = cls c2 }
  | 4 -> Change.Delete_edge { sup = cls c1; sub = cls c2; connected_to = None }
  | 5 ->
    Change.Add_class
      {
        cls = Printf.sprintf "N%d" (Random.State.int rng 1000);
        connected_to = Some (cls c1);
      }
  | 6 -> Change.Delete_class { cls = cls c1 }
  | _ ->
    Change.Insert_class
      {
        cls = Printf.sprintf "I%d" (Random.State.int rng 1000);
        sup = cls c1;
        sub = cls c2;
      }

(* -------------------------------------------------------------- *)
(* Properties                                                      *)
(* -------------------------------------------------------------- *)

let prop_random_schema_consistent =
  QCheck.Test.make ~name:"random schema + population is consistent" ~count:25
    seed_arb (fun seed ->
      let rs = Random_schema.generate ~seed ~classes:12 ~objects:30 () in
      Database.check rs.db = [])

let prop_tse_equals_direct =
  QCheck.Test.make
    ~name:"TSE translation == direct modification (Proposition A, random)"
    ~count:40 seed_arb (fun seed ->
      let rng = Random.State.make [| seed; 17 |] in
      let mk () = Random_schema.generate ~seed ~classes:8 ~objects:16 () in
      let rs1 = mk () and rs2 = mk () in
      let names = Random_schema.class_names rs1 in
      (* a random subset of classes forms the view (always at least 2) *)
      let view_names =
        List.filteri (fun i _ -> i < 2 || Random.State.bool rng) names
      in
      let mk_view (rs : Random_schema.t) =
        let g = Database.graph rs.db in
        Tse_views.View_schema.make ~name:"V" ~version:0 g
          (List.map
             (fun n -> (Schema_graph.find_by_name_exn g n).Klass.cid)
             view_names)
      in
      let v1 = mk_view rs1 and v2 = mk_view rs2 in
      let change = random_change rng rs1 in
      let r1 =
        match Translator.apply rs1.db v1 change with
        | v -> Ok v
        | exception Change.Rejected m -> Error m
      in
      let r2 =
        match Direct.apply rs2.db v2 change with
        | v -> Ok v
        | exception Change.Rejected m -> Error m
      in
      let oracle_limitation m =
        (* TSE can delete a view-relative-local attribute by hiding it;
           the destructive oracle cannot express that and says so *)
        String.length m >= 24 && String.sub m 0 24 = "direct oracle limitation"
      in
      match r1, r2 with
      | Error _, Error _ -> true
      | Ok _, Error m when oracle_limitation m -> true
      | Ok nv1, Ok nv2 ->
        let diff = Verify.diff_views (rs1.db, nv1) (rs2.db, nv2) in
        if diff <> [] then
          QCheck.Test.fail_reportf "S'' <> S' for %s:@.%s"
            (Change.to_string change)
            (String.concat "\n" diff)
        else Database.check rs1.db = []
      | Ok _, Error m ->
        QCheck.Test.fail_reportf "TSE accepted, direct rejected (%s): %s"
          (Change.to_string change) m
      | Error m, Ok _ ->
        QCheck.Test.fail_reportf "TSE rejected (%s), direct accepted: %s"
          (Change.to_string change) m)

let prop_view_independence =
  QCheck.Test.make
    ~name:"other views keep their fingerprints (Proposition B, random)"
    ~count:25 seed_arb (fun seed ->
      let rng = Random.State.make [| seed; 23 |] in
      let rs = Random_schema.generate ~seed ~classes:10 ~objects:20 () in
      let tsem = Tsem.of_database rs.db in
      let names = Random_schema.class_names rs in
      let half = List.filteri (fun i _ -> i mod 2 = 0) names in
      ignore (Tsem.define_view_by_names tsem ~name:"MINE" names);
      ignore (Tsem.define_view_by_names tsem ~name:"OTHER" half);
      let before = Verify.view_fingerprint rs.db (Tsem.current tsem "OTHER") in
      let applied = ref 0 in
      for _ = 1 to 5 do
        match Tsem.evolve tsem ~view:"MINE" (random_change rng rs) with
        | _ -> incr applied
        | exception Change.Rejected _ -> ()
      done;
      let after = Verify.view_fingerprint rs.db (Tsem.current tsem "OTHER") in
      String.equal before after && Database.check rs.db = [])

let prop_updatability_preserved =
  QCheck.Test.make
    ~name:"every evolved view stays updatable (Theorem 1, random)" ~count:25
    seed_arb (fun seed ->
      let rng = Random.State.make [| seed; 31 |] in
      let rs = Random_schema.generate ~seed ~classes:8 ~objects:10 () in
      let tsem = Tsem.of_database rs.db in
      ignore
        (Tsem.define_view_by_names tsem ~name:"V" (Random_schema.class_names rs));
      for _ = 1 to 6 do
        try ignore (Tsem.evolve tsem ~view:"V" (random_change rng rs))
        with Change.Rejected _ -> ()
      done;
      Verify.all_updatable rs.db (Tsem.current tsem "V"))

let prop_history_monotone =
  QCheck.Test.make ~name:"history keeps every version readable" ~count:20
    seed_arb (fun seed ->
      let rng = Random.State.make [| seed; 41 |] in
      let rs = Random_schema.generate ~seed ~classes:6 ~objects:6 () in
      let tsem = Tsem.of_database rs.db in
      ignore
        (Tsem.define_view_by_names tsem ~name:"V" (Random_schema.class_names rs));
      let fingerprints = ref [] in
      let record () =
        let v = Tsem.current tsem "V" in
        fingerprints :=
          (v.Tse_views.View_schema.version, Verify.view_fingerprint rs.db v)
          :: !fingerprints
      in
      record ();
      for _ = 1 to 4 do
        (try ignore (Tsem.evolve tsem ~view:"V" (random_change rng rs))
         with Change.Rejected _ -> ());
        record ()
      done;
      (* every snapshot of a version taken when it was current must still
         hold now: old views are never mutated *)
      List.for_all
        (fun (version, fp) ->
          match
            Tse_views.History.version (Tsem.history tsem) "V" version
          with
          | Some v -> String.equal fp (Verify.view_fingerprint rs.db v)
          | None -> false)
        !fingerprints)

let prop_trace_calibration =
  QCheck.Test.make ~name:"evolution traces match the cited statistics"
    ~count:10 seed_arb (fun seed ->
      let initial_classes = 10 and initial_attrs = 30 in
      let trace =
        Evolution_trace.generate ~seed ~months:18 ~initial_classes
          ~initial_attrs
      in
      let s = Evolution_trace.summarize trace in
      let cg, ag, ac = Evolution_trace.ratios s ~initial_classes ~initial_attrs in
      (* within 15% of the cited 139% / 274% / 59% *)
      Float.abs (cg -. 1.39) < 0.2
      && Float.abs (ag -. 2.74) < 0.4
      && Float.abs (ac -. 0.59) < 0.15)

let prop_trace_replay_consistent =
  QCheck.Test.make ~name:"replaying a trace keeps the database consistent"
    ~count:6 seed_arb (fun seed ->
      let rs = Random_schema.generate ~seed ~classes:6 ~objects:12 () in
      let tsem = Tsem.of_database rs.db in
      ignore
        (Tsem.define_view_by_names tsem ~name:"V" (Random_schema.class_names rs));
      let trace =
        Evolution_trace.generate ~seed ~months:6 ~initial_classes:6
          ~initial_attrs:18
      in
      let applied = ref 0 and rejected = ref 0 in
      Evolution_trace.replay tsem ~view:"V" trace ~applied ~rejected;
      !applied > 0 && Database.check rs.db = [])

(* The two Section 4 object models must agree on every observable
   membership fact under arbitrary classification scripts. *)
let prop_models_agree =
  QCheck.Test.make ~name:"slicing == intersection on random scripts" ~count:50
    seed_arb (fun seed ->
      let rng = Random.State.make [| seed; 99 |] in
      let run (type m) (module M : Tse_objmodel.Model_sig.S with type t = m) =
        let cars = Cars.build () in
        let stats = Tse_store.Stats.create () in
        let m = M.create ~graph:cars.graph ~heap:cars.heap ~stats in
        let classes = [| cars.car; cars.jeep; cars.imported |] in
        let local = Random.State.copy rng in
        let objs =
          Array.init 5 (fun _ ->
              M.create_object m classes.(Random.State.int local 3))
        in
        (* a random script of add/remove/set operations *)
        for _ = 1 to 30 do
          let o = objs.(Random.State.int local 5) in
          let c = classes.(Random.State.int local 3) in
          match Random.State.int local 3 with
          | 0 -> M.add_to_class m o c
          | 1 ->
            if not (Tse_store.Oid.equal c cars.car) then M.remove_from_class m o c
          | _ -> (
            try M.set_attr m o "model" (Value.String "x")
            with Expr.Unknown_property _ -> ())
        done;
        (* observable state: the membership matrix *)
        Array.to_list objs
        |> List.concat_map (fun o ->
               List.map (fun c -> M.is_member m o c) (Array.to_list classes))
      in
      run (module Tse_objmodel.Slicing) = run (module Tse_objmodel.Intersection))

let prop_catalog_roundtrip =
  QCheck.Test.make ~name:"catalog roundtrips randomly evolved databases"
    ~count:10 seed_arb (fun seed ->
      let rng = Random.State.make [| seed; 77 |] in
      let rs = Random_schema.generate ~seed ~classes:8 ~objects:16 () in
      let tsem = Tsem.of_database rs.db in
      ignore
        (Tsem.define_view_by_names tsem ~name:"V" (Random_schema.class_names rs));
      for _ = 1 to 4 do
        try ignore (Tsem.evolve tsem ~view:"V" (random_change rng rs))
        with Change.Rejected _ -> ()
      done;
      let text = Tse_views.Catalog.to_string ~history:(Tsem.history tsem) rs.db in
      let db', history' = Tse_views.Catalog.of_string text in
      let fp db v = Verify.view_fingerprint db v in
      let ok_views =
        List.for_all
          (fun name ->
            List.for_all
              (fun (v : Tse_views.View_schema.t) ->
                match
                  Tse_views.History.version history' name
                    v.Tse_views.View_schema.version
                with
                | Some v' -> String.equal (fp rs.db v) (fp db' v')
                | None -> false)
              (Tse_views.History.versions (Tsem.history tsem) name))
          (Tse_views.History.view_names (Tsem.history tsem))
      in
      ok_views && Database.check db' = [])

(* The incremental reclassification engine must be observationally equal
   to the full-fixpoint oracle: twin databases built from one seed — one
   per mode — are driven through the same random trace of attribute
   writes, base-membership changes and mid-trace view derivations, then
   compared fact by fact. *)
let prop_incremental_equals_oracle =
  QCheck.Test.make
    ~name:"incremental reclassification == full-fixpoint oracle" ~count:30
    seed_arb (fun seed ->
      let mk full =
        Random_schema.generate ~seed ~classes:8 ~objects:16 ~virtuals:6
          ~full_reclassify:full ()
      in
      let inc = mk false and ora = mk true in
      if not (Database.full_reclassify ora.db && not (Database.full_reclassify inc.db))
      then QCheck.Test.fail_report "modes not set as requested";
      let rng = Random.State.make [| seed; 55 |] in
      let attr_pool = Array.init 24 (fun i -> Printf.sprintf "a%d" (i + 1)) in
      let objs = Array.of_list (List.sort Oid.compare (Database.objects inc.db)) in
      if Array.length objs = 0 then true
      else begin
        (* the op list is drawn once, then replayed on both twins *)
        let steps =
          List.init 60 (fun i ->
              let o = Random.State.int rng (Array.length objs) in
              match Random.State.int rng 6 with
              | 0 | 1 | 2 ->
                let a = attr_pool.(Random.State.int rng (Array.length attr_pool)) in
                let v =
                  match Random.State.int rng 3 with
                  | 0 -> Value.Int (Random.State.int rng 100)
                  | 1 -> Value.Bool (Random.State.bool rng)
                  | _ -> Value.String (Printf.sprintf "v%d" (Random.State.int rng 8))
                in
                `Write (o, a, v)
              | 3 -> `Add_base (o, Random.State.int rng 8)
              | 4 -> `Remove_base (o, Random.State.int rng 8)
              | _ ->
                `Derive (i, Random.State.int rng 8, Random.State.int rng 100))
        in
        let apply (rs : Random_schema.t) step =
          let db = rs.db in
          let class_at i = List.nth rs.classes (i mod List.length rs.classes) in
          match step with
          | `Write (o, a, v) -> begin
            try Database.set_attr db objs.(o) a v
            with Expr.Unknown_property _ | Expr.Type_error _ -> ()
          end
          | `Add_base (o, c) -> Database.add_base_membership db objs.(o) (class_at c)
          | `Remove_base (o, c) ->
            Database.remove_base_membership db objs.(o) (class_at c)
          | `Derive (i, c, bound) -> begin
            let src = class_at c in
            match
              Random_schema.random_attr (Random.State.make [| seed; i |]) rs src
            with
            | None -> ()
            | Some a -> (
              try
                ignore
                  (Tse_algebra.Ops.select db ~name:(Printf.sprintf "W%d" i)
                     ~src Expr.(attr a >= int bound))
              with Tse_algebra.Ops.Error _ -> ())
          end
        in
        List.iter (fun s -> apply inc s; apply ora s) steps;
        (* identical seeds and identical op streams allocate identical
           oids, so facts compare directly *)
        let facts (rs : Random_schema.t) =
          let db = rs.db in
          let g = Database.graph db in
          let cids = List.sort Oid.compare (Schema_graph.cids g) in
          List.map
            (fun o ->
              List.map
                (fun c ->
                  ( Database.is_member db o c,
                    Oid.Set.mem o (Database.extent db c) ))
                cids)
            (List.sort Oid.compare (Database.objects db))
        in
        let props (rs : Random_schema.t) =
          List.map
            (fun o ->
              Array.to_list attr_pool
              |> List.map (fun a ->
                     match Database.get_prop rs.db o a with
                     | v -> Fmt.str "%a" Value.pp v
                     | exception Expr.Unknown_property _ -> "?"
                     | exception Expr.Type_error _ -> "!"))
            (List.sort Oid.compare (Database.objects rs.db))
        in
        if facts inc <> facts ora then
          QCheck.Test.fail_report "membership/extent facts diverged"
        else if props inc <> props ora then
          QCheck.Test.fail_report "property reads diverged"
        else
          match Database.check inc.db, Database.check ora.db with
          | [], [] -> true
          | p, p' ->
            QCheck.Test.fail_reportf "inconsistent:@.%s"
              (String.concat "\n" (p @ p'))
      end)

let suite =
  List.map Qcheck_det.to_alcotest
    [
      prop_models_agree;
      prop_incremental_equals_oracle;
      prop_catalog_roundtrip;
      prop_random_schema_consistent;
      prop_tse_equals_direct;
      prop_view_independence;
      prop_updatability_preserved;
      prop_history_monotone;
      prop_trace_calibration;
      prop_trace_replay_consistent;
    ]
