(* Tests for the database kernel: object lifecycle, extents, property
   access, derived membership. *)

open Tse_store
open Tse_schema
open Tse_db

let check = Alcotest.check
let vpp = Alcotest.testable Value.pp Value.equal
let uni () = Tse_workload.University.build ()

let test_create_and_extents () =
  let u = uni () in
  let db = u.db in
  let ta =
    Database.create_object db u.ta
      ~init:[ ("name", Value.String "kim"); ("hours", Value.Int 10) ]
  in
  (* a TA is in the extents of TA, Student, TeachingStaff, Staff, Person *)
  List.iter
    (fun (label, cid) ->
      Alcotest.(check bool) label true (Oid.Set.mem ta (Database.extent db cid)))
    [
      ("in TA", u.ta);
      ("in Student", u.student);
      ("in TeachingStaff", u.teaching_staff);
      ("in Staff", u.staff);
      ("in Person", u.person);
    ];
  Alcotest.(check bool) "not in Grad" false
    (Oid.Set.mem ta (Database.extent db u.grad));
  Alcotest.(check (list string)) "consistent" [] (Database.check db)

let test_property_access () =
  let u = uni () in
  let db = u.db in
  let s =
    Database.create_object db u.student
      ~init:
        [ ("name", Value.String "ann"); ("age", Value.Int 25);
          ("gpa", Value.Float 3.9) ]
  in
  check vpp "inherited attr" (Value.String "ann") (Database.get_prop db s "name");
  check vpp "local attr" (Value.Float 3.9) (Database.get_prop db s "gpa");
  Database.set_attr db s "age" (Value.Int 26);
  check vpp "updated" (Value.Int 26) (Database.get_prop db s "age");
  Alcotest.check_raises "unknown prop" (Expr.Unknown_property "salary")
    (fun () -> ignore (Database.get_prop db s "salary"));
  (try
     Database.set_attr db s "age" (Value.String "old");
     Alcotest.fail "expected type error"
   with Expr.Type_error _ -> ())

let test_method_evaluation () =
  let u = uni () in
  let db = u.db in
  (* add a derived method adult() = age >= 18 to Person *)
  let kp = Schema_graph.find_exn (Database.graph db) u.person in
  Klass.add_local_prop kp
    (Prop.method_ ~origin:u.person "adult" Expr.(attr "age" >= int 18));
  let p =
    Database.create_object db u.person
      ~init:[ ("name", Value.String "bo"); ("age", Value.Int 12) ]
  in
  check vpp "method false" (Value.Bool false) (Database.get_prop db p "adult");
  Database.set_attr db p "age" (Value.Int 30);
  check vpp "method true" (Value.Bool true) (Database.get_prop db p "adult");
  (* methods are not settable *)
  (try
     Database.set_attr db p "adult" (Value.Bool true);
     Alcotest.fail "expected type error"
   with Expr.Type_error _ -> ())

let test_base_membership_changes () =
  let u = uni () in
  let db = u.db in
  let p = Database.create_object db u.person ~init:[ ("age", Value.Int 20) ] in
  Alcotest.(check bool) "not student" false (Database.is_member db p u.student);
  Database.add_base_membership db p u.student;
  Alcotest.(check bool) "now student" true (Database.is_member db p u.student);
  Alcotest.(check bool) "still person" true (Database.is_member db p u.person);
  Database.set_attr db p "gpa" (Value.Float 3.0);
  check vpp "student attr now usable" (Value.Float 3.0)
    (Database.get_prop db p "gpa");
  Database.remove_base_membership db p u.student;
  Alcotest.(check bool) "student dropped" false (Database.is_member db p u.student);
  Alcotest.(check bool) "person kept" true (Database.is_member db p u.person);
  Alcotest.(check (list string)) "consistent" [] (Database.check db)

let test_membership_closure_on_add () =
  let u = uni () in
  let db = u.db in
  let p = Database.create_object db u.person ~init:[] in
  (* adding to TA pulls in Student, TeachingStaff and Staff *)
  Database.add_base_membership db p u.ta;
  List.iter
    (fun cid ->
      Alcotest.(check bool)
        (Printf.sprintf "member of %s"
           (Schema_graph.name_of (Database.graph db) cid))
        true (Database.is_member db p cid))
    [ u.ta; u.student; u.teaching_staff; u.staff; u.person ];
  (* removing Student also removes TA (its descendant) but keeps Staff *)
  Database.remove_base_membership db p u.student;
  Alcotest.(check bool) "TA dropped" false (Database.is_member db p u.ta);
  Alcotest.(check bool) "Staff kept" true (Database.is_member db p u.staff);
  Alcotest.(check (list string)) "consistent" [] (Database.check db)

let test_select_class_membership () =
  let u = uni () in
  let db = u.db in
  let g = Database.graph db in
  (* a virtual select class: Adult = select from Person where age >= 18,
     linked under Person as the classifier would *)
  let adult =
    Schema_graph.register_virtual g ~name:"Adult"
      (Klass.Select (u.person, Expr.(attr "age" >= int 18)))
      []
  in
  Schema_graph.add_edge g ~sup:u.person ~sub:adult;
  Database.note_new_class db adult;
  let young = Database.create_object db u.person ~init:[ ("age", Value.Int 10) ] in
  let old = Database.create_object db u.person ~init:[ ("age", Value.Int 40) ] in
  Alcotest.(check bool) "young not adult" false (Database.is_member db young adult);
  Alcotest.(check bool) "old adult" true (Database.is_member db old adult);
  check Alcotest.int "extent size" 1 (Database.extent_size db adult);
  (* updating the attribute reclassifies *)
  Database.set_attr db young "age" (Value.Int 19);
  Alcotest.(check bool) "young grew up" true (Database.is_member db young adult);
  Database.set_attr db old "age" (Value.Int 5);
  Alcotest.(check bool) "old un-classified" false (Database.is_member db old adult);
  Alcotest.(check (list string)) "consistent" [] (Database.check db)

let test_refine_class_membership () =
  let u = uni () in
  let db = u.db in
  let g = Database.graph db in
  (* capacity-augmenting refine: Student' = refine register for Student *)
  let register = Prop.stored ~origin:(Oid.of_int 0) "register" Value.TBool in
  let student' =
    Schema_graph.register_virtual g ~name:"Student'"
      (Klass.Refine ([ register ], u.student))
      [ register ]
  in
  Schema_graph.add_edge g ~sup:u.student ~sub:student';
  Database.note_new_class db student';
  let s = Database.create_object db u.student ~init:[ ("age", Value.Int 20) ] in
  (* every Student is automatically a member of the refine class *)
  Alcotest.(check bool) "student in Student'" true
    (Database.is_member db s student');
  (* ... and can store the new attribute in its new slice *)
  Database.set_attr db s "register" (Value.Bool true);
  check vpp "register readable" (Value.Bool true)
    (Database.get_prop db s "register");
  Alcotest.(check (list string)) "consistent" [] (Database.check db)

let test_set_ops_membership () =
  let u = uni () in
  let db = u.db in
  let g = Database.graph db in
  let mk name d =
    let cid = Schema_graph.register_virtual g ~name d [] in
    Database.note_new_class db cid;
    cid
  in
  let union = mk "StudentsOrStaff" (Klass.Union (u.student, u.staff)) in
  Schema_graph.add_edge g ~sup:u.person ~sub:union;
  let inter = mk "StudentStaff" (Klass.Intersect (u.student, u.staff)) in
  Schema_graph.add_edge g ~sup:u.student ~sub:inter;
  Schema_graph.add_edge g ~sup:u.staff ~sub:inter;
  let diff = mk "NonStaffStudent" (Klass.Difference (u.student, u.staff)) in
  Schema_graph.add_edge g ~sup:u.student ~sub:diff;
  let pure_student = Database.create_object db u.student ~init:[] in
  let ta = Database.create_object db u.ta ~init:[] in
  let staff_only = Database.create_object db u.support_staff ~init:[] in
  let person = Database.create_object db u.person ~init:[] in
  let mem o c = Database.is_member db o c in
  Alcotest.(check bool) "student in union" true (mem pure_student union);
  Alcotest.(check bool) "staff in union" true (mem staff_only union);
  Alcotest.(check bool) "person not in union" false (mem person union);
  Alcotest.(check bool) "ta in intersect" true (mem ta inter);
  Alcotest.(check bool) "pure student not in intersect" false (mem pure_student inter);
  Alcotest.(check bool) "pure student in difference" true (mem pure_student diff);
  Alcotest.(check bool) "ta not in difference" false (mem ta diff);
  Alcotest.(check (list string)) "consistent" [] (Database.check db)

let test_derived_on_derived () =
  let u = uni () in
  let db = u.db in
  let g = Database.graph db in
  (* select on top of a capacity-augmenting refine: the predicate reads the
     refined attribute, which only exists on the refine slice *)
  let credits = Prop.stored ~origin:(Oid.of_int 0) "credits" Value.TInt ~default:(Value.Int 0) in
  let student' =
    Schema_graph.register_virtual g ~name:"Student'"
      (Klass.Refine ([ credits ], u.student))
      [ credits ]
  in
  Schema_graph.add_edge g ~sup:u.student ~sub:student';
  Database.note_new_class db student';
  let heavy =
    Schema_graph.register_virtual g ~name:"HeavyLoad"
      (Klass.Select (student', Expr.(attr "credits" >= int 12)))
      []
  in
  Schema_graph.add_edge g ~sup:student' ~sub:heavy;
  Database.note_new_class db heavy;
  let s = Database.create_object db u.student ~init:[] in
  Alcotest.(check bool) "default 0 credits: not heavy" false
    (Database.is_member db s heavy);
  Database.set_attr db s "credits" (Value.Int 15);
  Alcotest.(check bool) "now heavy" true (Database.is_member db s heavy);
  Alcotest.(check (list string)) "consistent" [] (Database.check db)

let test_destroy_object () =
  let u = uni () in
  let db = u.db in
  let s = Database.create_object db u.student ~init:[] in
  Database.destroy_object db s;
  Alcotest.(check bool) "gone" false (Database.mem_object db s);
  check Alcotest.int "extent empty" 0 (Database.extent_size db u.student);
  Alcotest.(check (list string)) "consistent" [] (Database.check db)

let test_populate_consistency () =
  let u = uni () in
  let objs = Tse_workload.University.populate u ~n:60 in
  check Alcotest.int "created 60" 60 (List.length objs);
  check Alcotest.int "population count" 60 (Database.object_count u.db);
  (* every sixth object lands in each class bucket *)
  check Alcotest.int "persons include everyone" 60
    (Database.extent_size u.db u.person);
  check Alcotest.int "graders" 10 (Database.extent_size u.db u.grader);
  Alcotest.(check (list string)) "consistent" [] (Database.check u.db)

(* --- incremental reclassification engine ---------------------------- *)

let test_zero_eval_on_untouched_attr () =
  let u = uni () in
  let db = u.db in
  (* the contract under test is the incremental engine's, whatever
     DB_FULL_RECLASSIFY says for the rest of the suite *)
  Database.set_full_reclassify db false;
  let senior =
    Tse_algebra.Ops.select db ~name:"Senior" ~src:u.person
      Expr.(attr "age" >= int 65)
  in
  let p =
    Database.create_object db u.person
      ~init:[ ("age", Value.Int 70); ("name", Value.String "pat") ]
  in
  Alcotest.(check bool) "senior" true (Database.is_member db p senior);
  let n0 = Database.formula_eval_count db in
  (* no select predicate reads name or ssn: the writes must short-circuit
     before any formula evaluation *)
  Database.set_attr db p "name" (Value.String "chris");
  Database.set_attr db p "ssn" (Value.Int 7);
  check Alcotest.int "zero evaluations" n0 (Database.formula_eval_count db);
  Database.set_attr db p "age" (Value.Int 30);
  Alcotest.(check bool) "left Senior" false (Database.is_member db p senior);
  Alcotest.(check bool) "age write evaluated the predicate" true
    (Database.formula_eval_count db > n0);
  Alcotest.(check (list string)) "consistent" [] (Database.check db)

let test_nonconvergence_hook () =
  let u = uni () in
  let db = u.db in
  let g = Database.graph db in
  Alcotest.(check bool) "fuel is positive" true (Database.reclassify_fuel > 0);
  let fired = ref 0 in
  Database.set_nonconvergence_hook db (fun _ -> incr fired);
  (* a self-negating derivation: V = select Person where not member_of V.
     Built below the algebra because Ops rejects the forward reference. *)
  let v =
    Schema_graph.register_virtual g ~name:"Oscillator"
      (Klass.Select (u.person, Expr.Not (Expr.In_class "Oscillator")))
      []
  in
  Schema_graph.add_edge g ~sup:u.person ~sub:v;
  Database.note_new_class db v;
  ignore (Database.create_object db u.person ~init:[]);
  check Alcotest.int "hook fired" 1 !fired;
  ignore (Database.create_object db u.person ~init:[]);
  check Alcotest.int "hook is one-shot" 1 !fired

let test_create_event_order () =
  let u = uni () in
  let db = u.db in
  let log = ref [] in
  Database.add_listener db (fun ev -> log := ev :: !log);
  let o =
    Database.create_object db u.person
      ~init:[ ("name", Value.String "n"); ("age", Value.Int 3) ]
  in
  let events = List.rev !log in
  (match events with
  | Database.Object_created o' :: _ ->
    Alcotest.(check bool) "creation announced first" true (Oid.equal o o')
  | _ -> Alcotest.fail "first event was not Object_created");
  (* no listener may see a write to an object it has not been told exists *)
  let created = ref false in
  List.iter
    (fun ev ->
      match ev with
      | Database.Object_created _ -> created := true
      | Database.Attr_set _ ->
        Alcotest.(check bool) "Attr_set after Object_created" true !created
      | _ -> ())
    events;
  Alcotest.(check bool) "init writes were observed" true
    (List.exists
       (function Database.Attr_set _ -> true | _ -> false)
       events)

let test_membership_delta_events () =
  let u = uni () in
  let db = u.db in
  let senior =
    Tse_algebra.Ops.select db ~name:"Senior" ~src:u.person
      Expr.(attr "age" >= int 65)
  in
  let deltas = ref [] in
  Database.add_listener db (fun ev ->
      match ev with
      | Database.Membership_delta (o, a, r) -> deltas := (o, a, r) :: !deltas
      | _ -> ());
  let p = Database.create_object db u.person ~init:[ ("age", Value.Int 30) ] in
  check Alcotest.int "no spurious delta" 0 (List.length !deltas);
  Database.set_attr db p "age" (Value.Int 70);
  (match !deltas with
  | [ (o, [ a ], []) ] ->
    Alcotest.(check bool) "joined Senior" true
      (Oid.equal o p && Oid.equal a senior)
  | _ -> Alcotest.fail "expected one join delta");
  Alcotest.(check bool) "extent maintained by delta" true
    (Oid.Set.mem p (Database.extent db senior));
  deltas := [];
  Database.set_attr db p "age" (Value.Int 40);
  (match !deltas with
  | [ (o, [], [ r ]) ] ->
    Alcotest.(check bool) "left Senior" true (Oid.equal o p && Oid.equal r senior)
  | _ -> Alcotest.fail "expected one leave delta");
  Alcotest.(check bool) "extent pruned by delta" false
    (Oid.Set.mem p (Database.extent db senior));
  (* the oracle escape hatch fires the same deltas *)
  Database.set_full_reclassify db true;
  deltas := [];
  Database.set_attr db p "age" (Value.Int 80);
  check Alcotest.int "oracle delta" 1 (List.length !deltas);
  Alcotest.(check (list string)) "consistent" [] (Database.check db)

(* The event stream is a contract for derived structures (indexes,
   caches): creation is announced before any init write is visible, and
   each logical change fires exactly one event — one Membership_delta
   even when a write crosses several class predicates at once, one
   Bases_changed per base-membership edit. *)
let test_event_exactly_once () =
  let u = uni () in
  let db = u.db in
  let sixty =
    Tse_algebra.Ops.select db ~name:"SixtyPlus" ~src:u.person
      Expr.(attr "age" >= int 60)
  in
  let sixty_five =
    Tse_algebra.Ops.select db ~name:"SixtyFivePlus" ~src:u.person
      Expr.(attr "age" >= int 65)
  in
  let events = ref [] in
  Database.add_listener db (fun ev -> events := ev :: !events);
  let count p = List.length (List.filter p (List.rev !events)) in
  let n_created () =
    count (function Database.Object_created _ -> true | _ -> false)
  in
  let n_bases () =
    count (function Database.Bases_changed _ -> true | _ -> false)
  in
  let n_deltas () =
    count (function Database.Membership_delta _ -> true | _ -> false)
  in
  let p =
    Database.create_object db u.person
      ~init:[ ("name", Value.String "p"); ("age", Value.Int 30) ]
  in
  check Alcotest.int "one Object_created" 1 (n_created ());
  check Alcotest.int "creation: one Bases_changed" 1 (n_bases ());
  check Alcotest.int "creation below thresholds: no delta" 0 (n_deltas ());
  (* Object_created strictly precedes every init Attr_set *)
  let seen_create = ref false in
  List.iter
    (fun ev ->
      match ev with
      | Database.Object_created _ -> seen_create := true
      | Database.Attr_set _ ->
        Alcotest.(check bool) "no write before creation event" true
          !seen_create
      | _ -> ())
    (List.rev !events);
  (* one write crossing both predicates: exactly one delta, both gains *)
  events := [];
  Database.set_attr db p "age" (Value.Int 70);
  check Alcotest.int "threshold write: one delta" 1 (n_deltas ());
  (match
     List.find_opt
       (function Database.Membership_delta _ -> true | _ -> false)
       !events
   with
  | Some (Database.Membership_delta (o, added, removed)) ->
    Alcotest.(check bool) "delta names the object" true (Oid.equal o p);
    Alcotest.(check bool) "gained both selects" true
      (List.exists (Oid.equal sixty) added
      && List.exists (Oid.equal sixty_five) added);
    check Alcotest.int "nothing lost" 0 (List.length removed)
  | _ -> Alcotest.fail "expected a membership delta");
  check Alcotest.int "attr write: no Bases_changed" 0 (n_bases ());
  (* a write that changes no membership fires no delta *)
  events := [];
  Database.set_attr db p "age" (Value.Int 75);
  check Alcotest.int "same side of both predicates: no delta" 0 (n_deltas ());
  (* each base-membership edit fires exactly one Bases_changed *)
  events := [];
  Database.add_base_membership db p u.staff;
  check Alcotest.int "add base: one Bases_changed" 1 (n_bases ());
  events := [];
  Database.remove_base_membership db p u.staff;
  check Alcotest.int "remove base: one Bases_changed" 1 (n_bases ());
  Alcotest.(check (list string)) "consistent" [] (Database.check db)

let suite =
  [
    Alcotest.test_case "create + extent closure" `Quick test_create_and_extents;
    Alcotest.test_case "property access" `Quick test_property_access;
    Alcotest.test_case "method evaluation" `Quick test_method_evaluation;
    Alcotest.test_case "base membership add/remove" `Quick
      test_base_membership_changes;
    Alcotest.test_case "membership closure on add" `Quick
      test_membership_closure_on_add;
    Alcotest.test_case "select class membership tracks updates" `Quick
      test_select_class_membership;
    Alcotest.test_case "refine class gives new stored attribute" `Quick
      test_refine_class_membership;
    Alcotest.test_case "union/intersect/difference membership" `Quick
      test_set_ops_membership;
    Alcotest.test_case "select over refine (derived on derived)" `Quick
      test_derived_on_derived;
    Alcotest.test_case "destroy object" `Quick test_destroy_object;
    Alcotest.test_case "populated university is consistent" `Quick
      test_populate_consistency;
    Alcotest.test_case "untouched attribute: zero formula evaluations" `Quick
      test_zero_eval_on_untouched_attr;
    Alcotest.test_case "nonconvergence hook fires once" `Quick
      test_nonconvergence_hook;
    Alcotest.test_case "creation event precedes init writes" `Quick
      test_create_event_order;
    Alcotest.test_case "membership deltas drive extents" `Quick
      test_membership_delta_events;
    Alcotest.test_case "events fire exactly once per change" `Quick
      test_event_exactly_once;
  ]
