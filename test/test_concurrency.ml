(* Tests for the optimistic-concurrency session layer. *)

open Tse_store
open Tse_db
open Tse_concurrency

let check = Alcotest.check
let vpp = Alcotest.testable Value.pp Value.equal

let fixture () =
  let u = Tse_workload.University.build () in
  let occ = Occ.create u.db in
  let o =
    Database.create_object u.db u.student
      ~init:[ ("name", Value.String "ada"); ("age", Value.Int 20) ]
  in
  (u, occ, o)

let test_commit_applies_writes () =
  let u, occ, o = fixture () in
  let s = Occ.begin_session occ in
  check vpp "read through session" (Value.Int 20) (Occ.read s o "age");
  Occ.write s o "age" (Value.Int 21);
  (* buffered: not yet visible outside *)
  check vpp "invisible before commit" (Value.Int 20) (Database.get_prop u.db o "age");
  (* ... but visible to the session itself *)
  check vpp "own write visible" (Value.Int 21) (Occ.read s o "age");
  (match Occ.commit s with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "unexpected conflict");
  check vpp "applied" (Value.Int 21) (Database.get_prop u.db o "age");
  Alcotest.(check bool) "session closed" false (Occ.is_active s)

let test_first_committer_wins () =
  let _u, occ, o = fixture () in
  let s1 = Occ.begin_session occ in
  let s2 = Occ.begin_session occ in
  ignore (Occ.read s1 o "age");
  ignore (Occ.read s2 o "age");
  Occ.write s1 o "age" (Value.Int 30);
  Occ.write s2 o "age" (Value.Int 40);
  (match Occ.commit s1 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "first committer must succeed");
  match Occ.commit s2 with
  | Ok () -> Alcotest.fail "second committer must conflict"
  | Error { objects } ->
    check Alcotest.int "conflicting object reported" 1 (List.length objects)

let test_disjoint_sessions_both_commit () =
  let u, occ, o = fixture () in
  let o2 =
    Database.create_object u.db u.student ~init:[ ("age", Value.Int 30) ]
  in
  let s1 = Occ.begin_session occ in
  let s2 = Occ.begin_session occ in
  Occ.write s1 o "age" (Value.Int 21);
  Occ.write s2 o2 "age" (Value.Int 31);
  Alcotest.(check bool) "s1 commits" true (Result.is_ok (Occ.commit s1));
  Alcotest.(check bool) "s2 commits (disjoint)" true (Result.is_ok (Occ.commit s2))

let test_direct_update_invalidates_reader () =
  let u, occ, o = fixture () in
  let s = Occ.begin_session occ in
  ignore (Occ.read s o "age");
  (* a non-session program writes directly *)
  Database.set_attr u.db o "age" (Value.Int 99);
  Occ.write s o "name" (Value.String "eve");
  match Occ.commit s with
  | Ok () -> Alcotest.fail "stale read must conflict"
  | Error _ -> ()

let test_read_only_session_never_conflicts_itself () =
  let u, occ, o = fixture () in
  ignore u;
  let s = Occ.begin_session occ in
  ignore (Occ.read s o "age");
  ignore (Occ.read s o "name");
  check Alcotest.int "one object in read set" 1 (Occ.reads s);
  Alcotest.(check bool) "read-only commits" true (Result.is_ok (Occ.commit s))

let test_abort_discards () =
  let u, occ, o = fixture () in
  let s = Occ.begin_session occ in
  Occ.write s o "age" (Value.Int 77);
  Occ.abort s;
  check vpp "nothing applied" (Value.Int 20) (Database.get_prop u.db o "age");
  try
    ignore (Occ.read s o "age");
    Alcotest.fail "finished session must not be reusable"
  with Invalid_argument _ -> ()

let test_write_skew_excluded () =
  (* classic write skew: s1 reads x writes y, s2 reads y writes x; under
     our scheme writes join the read set, so one of them must abort *)
  let u, occ, _ = fixture () in
  let x = Database.create_object u.db u.person ~init:[ ("age", Value.Int 1) ] in
  let y = Database.create_object u.db u.person ~init:[ ("age", Value.Int 1) ] in
  let s1 = Occ.begin_session occ in
  let s2 = Occ.begin_session occ in
  ignore (Occ.read s1 x "age");
  Occ.write s1 y "age" (Value.Int 0);
  ignore (Occ.read s2 y "age");
  Occ.write s2 x "age" (Value.Int 0);
  let r1 = Occ.commit s1 and r2 = Occ.commit s2 in
  Alcotest.(check bool) "not both committed" false
    (Result.is_ok r1 && Result.is_ok r2)

let test_sessions_across_schema_change () =
  (* a session reading through an old view is invalidated by a conflicting
     write even when the writer goes through an evolved view *)
  let u = Tse_workload.University.build () in
  let occ = Occ.create u.db in
  let tsem = Tse_core.Tsem.of_database u.db in
  ignore (Tse_core.Tsem.define_view_by_names tsem ~name:"VS" [ "Person"; "Student" ]);
  let o = Database.create_object u.db u.student ~init:[ ("age", Value.Int 20) ] in
  let s = Occ.begin_session occ in
  ignore (Occ.read s o "age");
  ignore
    (Tse_core.Tsem.evolve tsem ~view:"VS"
       (Tse_core.Change.Add_attribute
          { cls = "Student"; def = Tse_core.Change.attr "email" Value.TString }));
  (* the new-view program updates the shared object *)
  Database.set_attr u.db o "email" (Value.String "a@x");
  Occ.write s o "age" (Value.Int 21);
  match Occ.commit s with
  | Ok () -> Alcotest.fail "expected conflict across the schema change"
  | Error _ -> ()

let test_retry_first_attempt () =
  let u, occ, o = fixture () in
  let v, attempt =
    Occ.commit_with_retry occ (fun s ->
        let age = Occ.read s o "age" in
        Occ.write s o "age" (Value.Int 21);
        age)
  in
  check vpp "body result returned" (Value.Int 20) v;
  check Alcotest.int "no conflicts" 1 attempt;
  check vpp "write applied" (Value.Int 21) (Database.get_prop u.db o "age")

let test_retry_after_conflict () =
  let u, occ, o = fixture () in
  let tries = ref 0 in
  let v, attempt =
    Occ.commit_with_retry ~backoff:0. occ (fun s ->
        incr tries;
        let age = Occ.read s o "age" in
        (* a rival commits between our read and our commit — once *)
        if !tries = 1 then Database.set_attr u.db o "age" (Value.Int 50);
        Occ.write s o "name" (Value.String "eve");
        age)
  in
  check Alcotest.int "committed on the retry" 2 attempt;
  (* the retry re-read through a fresh session and saw the rival's write *)
  check vpp "fresh read on retry" (Value.Int 50) v;
  check vpp "write applied" (Value.String "eve")
    (Database.get_prop u.db o "name")

let test_retry_gives_up () =
  let u, occ, o = fixture () in
  let tries = ref 0 in
  (try
     ignore
       (Occ.commit_with_retry ~attempts:3 ~backoff:0. occ (fun s ->
            incr tries;
            ignore (Occ.read s o "age");
            (* every attempt loses the race *)
            Database.set_attr u.db o "age" (Value.Int (100 + !tries));
            Occ.write s o "name" (Value.String "never")));
     Alcotest.fail "expected Too_many_conflicts"
   with Occ.Too_many_conflicts { objects } ->
     check Alcotest.int "conflicting object reported" 1 (List.length objects));
  check Alcotest.int "bounded attempts" 3 !tries;
  check vpp "no attempt's write leaked" (Value.String "ada")
    (Database.get_prop u.db o "name")

let test_retry_exhausted_counter () =
  let _u, occ, o = fixture () in
  let before = Tse_obs.Metrics.find_counter "occ.retry_exhausted" in
  (try
     ignore
       (Occ.commit_with_retry ~attempts:2 ~backoff:0. occ (fun s ->
            ignore (Occ.read s o "age");
            Database.set_attr _u.db o "age" (Value.Int 1);
            Occ.write s o "name" (Value.String "never")));
     Alcotest.fail "expected Too_many_conflicts"
   with Occ.Too_many_conflicts _ -> ());
  check Alcotest.int "occ.retry_exhausted bumped once" (before + 1)
    (Tse_obs.Metrics.find_counter "occ.retry_exhausted")

(* Retry schedules are a pure function of the supplied jitter state: two
   runs with equal seeds commit on the same attempt, and an explicit
   state isolates the test from the process-wide default. *)
let test_retry_jitter_seeded () =
  let run seed =
    let u, occ, o = fixture () in
    let tries = ref 0 in
    let _, attempt =
      Occ.commit_with_retry ~backoff:0.0001
        ~jitter:(Random.State.make [| seed |])
        occ
        (fun s ->
          incr tries;
          ignore (Occ.read s o "age");
          if !tries <= 2 then Database.set_attr u.db o "age" (Value.Int !tries);
          Occ.write s o "name" (Value.String "jit"))
    in
    attempt
  in
  check Alcotest.int "same seed, same schedule" (run 11) (run 11);
  check Alcotest.int "conflicts resolved on third attempt" 3 (run 12)

let test_retry_propagates_exceptions () =
  let _u, occ, o = fixture () in
  let tries = ref 0 in
  (try
     ignore
       (Occ.commit_with_retry occ (fun s ->
            incr tries;
            ignore (Occ.read s o "age");
            failwith "body blew up"));
     Alcotest.fail "expected the body's exception"
   with Failure m -> check Alcotest.string "original exception" "body blew up" m);
  check Alcotest.int "no retry on exception" 1 !tries

let test_retry_commits_through_durable () =
  (* winners of the OCC race flow to the durable layer through the sync
     policy: Manual buffers the batch until an explicit barrier, and the
     write survives a close/reopen afterwards *)
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tse_occ_durable_%d" (Unix.getpid ()))
  in
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end;
  let module Durable = Tse_db.Durable in
  let d, _ = Durable.open_dir ~policy:Durable.Manual ~dir () in
  let db = Durable.db d in
  let person =
    Tse_schema.Schema_graph.register_base (Database.graph db) ~name:"Person"
      ~props:[ Tse_schema.Prop.stored ~origin:(Oid.of_int 0) "age" Value.TInt ]
      ~supers:[]
  in
  Database.note_new_class db person;
  let o = Database.create_object db person ~init:[ ("age", Value.Int 1) ] in
  let occ = Occ.create db in
  let v, attempt =
    Occ.commit_with_retry ~durable:d occ (fun s ->
        let age = Occ.read s o "age" in
        Occ.write s o "age" (Value.Int 2);
        age)
  in
  check vpp "body result" (Value.Int 1) v;
  check Alcotest.int "first attempt" 1 attempt;
  (* the winning commit was forwarded, but Manual defers the barrier *)
  check Alcotest.int "buffered under Manual" 1 (Durable.unsynced_commits d);
  Durable.sync d;
  check Alcotest.int "barrier drains the group" 0 (Durable.unsynced_commits d);
  Durable.close d;
  let d2, _ = Durable.open_dir ~dir () in
  check vpp "write survived reopen" (Value.Int 2)
    (Database.get_prop (Durable.db d2) o "age");
  Durable.close d2

let suite =
  [
    Alcotest.test_case "commit applies buffered writes" `Quick
      test_commit_applies_writes;
    Alcotest.test_case "first committer wins" `Quick test_first_committer_wins;
    Alcotest.test_case "disjoint sessions both commit" `Quick
      test_disjoint_sessions_both_commit;
    Alcotest.test_case "direct update invalidates reader" `Quick
      test_direct_update_invalidates_reader;
    Alcotest.test_case "read-only session commits" `Quick
      test_read_only_session_never_conflicts_itself;
    Alcotest.test_case "abort discards" `Quick test_abort_discards;
    Alcotest.test_case "write skew excluded" `Quick test_write_skew_excluded;
    Alcotest.test_case "conflicts across schema evolution" `Quick
      test_sessions_across_schema_change;
    Alcotest.test_case "retry: clean first attempt" `Quick
      test_retry_first_attempt;
    Alcotest.test_case "retry: succeeds after conflict" `Quick
      test_retry_after_conflict;
    Alcotest.test_case "retry: bounded attempts" `Quick test_retry_gives_up;
    Alcotest.test_case "retry: exhaustion counted" `Quick
      test_retry_exhausted_counter;
    Alcotest.test_case "retry: jitter is seeded" `Quick
      test_retry_jitter_seeded;
    Alcotest.test_case "retry: exceptions propagate" `Quick
      test_retry_propagates_exceptions;
    Alcotest.test_case "retry: winners reach the durable layer" `Quick
      test_retry_commits_through_durable;
  ]
