(* Deterministic qcheck runs by default. An unset QCHECK_SEED means a
   fresh random seed per run, which turns any rare counterexample into
   a tier-1 flake (historically ~0.3% of the Proposition B property's
   generated seeds hit the since-fixed delete_edge/derivation
   disagreement — DESIGN.md §15). Pin the default seed so
   `dune runtest` is reproducible; set QCHECK_SEED to explore. *)

let seed =
  match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
  | Some s -> s
  | None -> 20260805

let to_alcotest t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) t
