(* Observability subsystem: metrics registry semantics, trace JSONL
   round-trip, and log-level parsing.  The registry is process-global
   and shared with the instrumented libraries, so these tests use
   test-local metric names and delta-based assertions. *)

module Metrics = Tse_obs.Metrics
module Trace = Tse_obs.Trace
module Log = Tse_obs.Log

let test_counter_basics () =
  let c = Metrics.counter "test_obs.basic" in
  let v0 = Metrics.counter_value c in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "incr + add" (v0 + 5) (Metrics.counter_value c);
  Alcotest.(check int)
    "find_counter sees the same cell" (v0 + 5)
    (Metrics.find_counter "test_obs.basic")

let test_registration_idempotent () =
  let a = Metrics.counter "test_obs.same" in
  let b = Metrics.counter "test_obs.same" in
  Metrics.incr a;
  Metrics.incr b;
  Alcotest.(check int)
    "both handles mutate one cell" (Metrics.counter_value a)
    (Metrics.counter_value b)

let test_labels_distinct () =
  let a = Metrics.counter ~labels:[ ("site", "a") ] "test_obs.labeled" in
  let b = Metrics.counter ~labels:[ ("site", "b") ] "test_obs.labeled" in
  let a0 = Metrics.counter_value a and b0 = Metrics.counter_value b in
  Metrics.incr a;
  Alcotest.(check int) "labeled a bumped" (a0 + 1) (Metrics.counter_value a);
  Alcotest.(check int) "labeled b untouched" b0 (Metrics.counter_value b);
  (* label order must not matter for identity *)
  let c1 =
    Metrics.counter ~labels:[ ("x", "1"); ("y", "2") ] "test_obs.multi"
  in
  let c2 =
    Metrics.counter ~labels:[ ("y", "2"); ("x", "1") ] "test_obs.multi"
  in
  Metrics.incr c1;
  Alcotest.(check int)
    "label order canonicalized" (Metrics.counter_value c1)
    (Metrics.counter_value c2)

let test_kind_conflict () =
  ignore (Metrics.counter "test_obs.kind");
  Alcotest.check_raises "gauge under a counter name"
    (Invalid_argument "Metrics.gauge: test_obs.kind is a counter") (fun () ->
      ignore (Metrics.gauge "test_obs.kind"));
  (* same name under different labels must also keep one kind *)
  Alcotest.check_raises "labeled gauge under a counter name"
    (Invalid_argument "Metrics: test_obs.kind already registered as a counter")
    (fun () ->
      ignore (Metrics.gauge ~labels:[ ("x", "y") ] "test_obs.kind"))

let test_gauge () =
  let g = Metrics.gauge "test_obs.gauge" in
  Metrics.set_gauge g 2.5;
  Metrics.add_gauge g (-1.0);
  Alcotest.(check (float 1e-9)) "set + add" 1.5 (Metrics.gauge_value g)

let test_histogram () =
  let h =
    Metrics.histogram ~buckets:[ 1.0; 10.0; 100.0 ] "test_obs.hist"
  in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 5.0; 50.0; 500.0 ];
  let snap =
    List.find_map
      (fun s ->
        if String.equal s.Metrics.s_name "test_obs.hist" then
          match s.Metrics.s_value with
          | Metrics.Histogram hs -> Some hs
          | _ -> None
        else None)
      (Metrics.snapshot ())
  in
  match snap with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some hs ->
    (* cumulative counts: le_1=2 (0.5, 1.0 — bounds are inclusive),
       le_10=3, le_100=4, inf picks up 500 *)
    Alcotest.(check (list (pair (float 1e-9) int)))
      "cumulative buckets"
      [ (1.0, 2); (10.0, 3); (100.0, 4) ]
      hs.Metrics.h_buckets;
    Alcotest.(check int) "overflow bucket" 1 hs.Metrics.h_inf;
    Alcotest.(check int) "count" 5 hs.Metrics.h_count;
    Alcotest.(check (float 1e-6)) "sum" 556.5 hs.Metrics.h_sum

let test_find_absent () =
  Alcotest.(check int)
    "absent counter reads 0" 0
    (Metrics.find_counter "test_obs.never_registered")

let test_reset () =
  let c = Metrics.counter "test_obs.reset_me" in
  Metrics.incr c;
  Metrics.reset ();
  Alcotest.(check int) "zeroed" 0 (Metrics.counter_value c);
  Metrics.incr c;
  Alcotest.(check int)
    "registration survives reset" 1
    (Metrics.find_counter "test_obs.reset_me")

let test_to_json () =
  let c = Metrics.counter "test_obs.json \"quoted\"" in
  Metrics.incr c;
  let json = Metrics.to_json (Metrics.snapshot ()) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool)
    "quoted name escaped" true
    (contains json "\"test_obs.json \\\"quoted\\\"\"")

(* ---- tracer --------------------------------------------------------- *)

let with_capture f =
  let lines = ref [] in
  Trace.set_sink (Some (fun l -> lines := l :: !lines));
  Fun.protect ~finally:(fun () -> Trace.set_sink None) f;
  List.rev !lines

let test_span_roundtrip () =
  let lines =
    with_capture (fun () ->
        Trace.with_span ~attrs:[ ("k", "v\"x") ] "test.span" (fun () -> ()))
  in
  match lines with
  | [ line ] -> (
    match Trace.parse_line line with
    | Error msg -> Alcotest.fail ("parse_line: " ^ msg)
    | Ok s ->
      Alcotest.(check string) "name" "test.span" s.Trace.name;
      Alcotest.(check bool) "dur non-negative" true (s.Trace.dur_us >= 0);
      Alcotest.(check (list (pair string string)))
        "attrs round-trip"
        [ ("k", "v\"x") ]
        s.Trace.attrs)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 span, got %d" (List.length l))

let test_span_on_exception () =
  let lines =
    with_capture (fun () ->
        try Trace.with_span "test.boom" (fun () -> failwith "kaboom")
        with Failure _ -> ())
  in
  match lines with
  | [ line ] -> (
    match Trace.parse_line line with
    | Error msg -> Alcotest.fail ("parse_line: " ^ msg)
    | Ok s -> (
      match List.assoc_opt "err" s.Trace.attrs with
      | Some e ->
        Alcotest.(check bool)
          "exception text captured" true
          (String.length e > 0)
      | None -> Alcotest.fail "no err attr on failed span"))
  | l -> Alcotest.fail (Printf.sprintf "expected 1 span, got %d" (List.length l))

let test_nested_spans () =
  let lines =
    with_capture (fun () ->
        Trace.with_span "outer" (fun () ->
            Trace.with_span "inner" (fun () -> ());
            Trace.event ~attrs:[ ("n", "1") ] "mark"))
  in
  let names =
    List.map
      (fun l ->
        match Trace.parse_line l with
        | Ok s -> s.Trace.name
        | Error m -> Alcotest.fail m)
      lines
  in
  (* children complete (and emit) before their parent *)
  Alcotest.(check (list string)) "emission order" [ "inner"; "mark"; "outer" ]
    names

let test_parse_rejects_garbage () =
  let bad l =
    match Trace.parse_line l with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "not json" true (bad "nonsense");
  Alcotest.(check bool) "trailing garbage" true
    (bad "{\"name\":\"x\",\"start_us\":1,\"dur_us\":2}tail");
  Alcotest.(check bool) "missing fields" true (bad "{\"name\":\"x\"}")

let test_parse_file () =
  let path = Filename.temp_file "tse_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      Trace.set_sink
        (Some
           (fun l ->
             output_string oc l;
             output_char oc '\n'));
      Fun.protect
        ~finally:(fun () -> Trace.set_sink None)
        (fun () ->
          for i = 1 to 3 do
            Trace.with_span
              ~attrs:[ ("i", string_of_int i) ]
              "file.span"
              (fun () -> ())
          done);
      close_out oc;
      match Trace.parse_file path with
      | Error msg -> Alcotest.fail ("parse_file: " ^ msg)
      | Ok (spans, err) ->
        Alcotest.(check bool) "no damage" true (err = None);
        Alcotest.(check int) "three spans" 3 (List.length spans);
        Alcotest.(check (list string))
          "attrs in order"
          [ "1"; "2"; "3" ]
          (List.map (fun s -> List.assoc "i" s.Trace.attrs) spans);
        List.iter
          (fun s -> Alcotest.(check bool) "sid assigned" true (s.Trace.sid > 0))
          spans)

(* A trace file torn at any byte offset — a crash mid-write — must
   still yield every complete line, with the damage position reported
   exactly when a non-empty partial line remains. *)
let test_parse_file_torn () =
  let lines =
    with_capture (fun () ->
        for i = 1 to 3 do
          Trace.with_span
            ~attrs:[ ("i", string_of_int i) ]
            "torn.span"
            (fun () -> ())
        done)
  in
  Alcotest.(check int) "three emitted lines" 3 (List.length lines);
  let full = String.concat "" (List.map (fun l -> l ^ "\n") lines) in
  let path = Filename.temp_file "tse_torn" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (* content extent of each line: start offset and end-of-content
         offset (the newline sits at the end offset) *)
      let extents =
        let off = ref 0 in
        List.map
          (fun l ->
            let s = !off in
            off := !off + String.length l + 1;
            (s, s + String.length l))
          lines
      in
      for cut = 0 to String.length full do
        let prefix = String.sub full 0 cut in
        let oc = open_out path in
        output_string oc prefix;
        close_out oc;
        (* a line parses when its full content made it in — losing only
           the trailing newline loses nothing; a strict prefix of the
           content is unparsable and must be reported as damage *)
        let complete =
          List.length (List.filter (fun (_, e) -> cut >= e) extents)
        in
        let partial =
          List.exists (fun (s, e) -> s < cut && cut < e) extents
        in
        match Trace.parse_file path with
        | Error msg ->
          Alcotest.fail (Printf.sprintf "cut %d: hard error %s" cut msg)
        | Ok (spans, damage) ->
          Alcotest.(check int)
            (Printf.sprintf "cut %d: complete lines parsed" cut)
            complete (List.length spans);
          (match damage with
          | None ->
            Alcotest.(check bool)
              (Printf.sprintf "cut %d: damage reported iff partial" cut)
              false partial
          | Some (lineno, _) ->
            Alcotest.(check bool)
              (Printf.sprintf "cut %d: damage reported iff partial" cut)
              true partial;
            Alcotest.(check int)
              (Printf.sprintf "cut %d: damage line number" cut)
              (complete + 1) lineno)
      done)

(* ---- logger --------------------------------------------------------- *)

let test_log_levels () =
  let lvl = Alcotest.testable (Fmt.of_to_string Log.level_to_string) ( = ) in
  Alcotest.(check (option lvl)) "warn" (Some Log.Warn)
    (Log.level_of_string "warn");
  Alcotest.(check (option lvl)) "warning alias" (Some Log.Warn)
    (Log.level_of_string "warning");
  Alcotest.(check (option lvl)) "quiet" (Some Log.Quiet)
    (Log.level_of_string "quiet");
  Alcotest.(check (option lvl)) "case-insensitive" (Some Log.Debug)
    (Log.level_of_string "DEBUG");
  Alcotest.(check (option lvl)) "unknown" None (Log.level_of_string "loud");
  let saved = Log.current_level () in
  Fun.protect
    ~finally:(fun () -> Log.set_level saved)
    (fun () ->
      Log.set_level Log.Error;
      Alcotest.(check lvl) "set/current" Log.Error (Log.current_level ());
      (* disabled level formats nothing and must not raise *)
      Log.debug "test" "invisible %d" 42)

let suite =
  [
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "registration idempotent" `Quick
      test_registration_idempotent;
    Alcotest.test_case "labels distinguish metrics" `Quick test_labels_distinct;
    Alcotest.test_case "kind conflict rejected" `Quick test_kind_conflict;
    Alcotest.test_case "gauge" `Quick test_gauge;
    Alcotest.test_case "histogram buckets" `Quick test_histogram;
    Alcotest.test_case "find_counter absent" `Quick test_find_absent;
    Alcotest.test_case "reset keeps registration" `Quick test_reset;
    Alcotest.test_case "json rendering escapes" `Quick test_to_json;
    Alcotest.test_case "span round-trip" `Quick test_span_roundtrip;
    Alcotest.test_case "span on exception" `Quick test_span_on_exception;
    Alcotest.test_case "nested span emission order" `Quick test_nested_spans;
    Alcotest.test_case "parser rejects garbage" `Quick
      test_parse_rejects_garbage;
    Alcotest.test_case "parse_file round-trip" `Quick test_parse_file;
    Alcotest.test_case "parse_file torn at every offset" `Quick
      test_parse_file_torn;
    Alcotest.test_case "log levels" `Quick test_log_levels;
  ]
