(* Tests for the storage substrate: OIDs, values, heap, txn, index,
   snapshots. *)

open Tse_store

let check = Alcotest.check
let vpp = Alcotest.testable Value.pp Value.equal

let test_oid_gen () =
  let g = Oid.Gen.create () in
  let a = Oid.Gen.fresh g and b = Oid.Gen.fresh g in
  Alcotest.(check bool) "fresh oids differ" false (Oid.equal a b);
  check Alcotest.int "count" 2 (Oid.Gen.count g);
  Oid.Gen.mark_used g (Oid.of_int 100);
  let c = Oid.Gen.fresh g in
  Alcotest.(check bool) "fresh after mark_used skips" true (Oid.to_int c > 100)

let test_value_conforms () =
  let open Value in
  Alcotest.(check bool) "int conforms" true (conforms (Int 3) TInt);
  Alcotest.(check bool) "int conforms float" true (conforms (Int 3) TFloat);
  Alcotest.(check bool) "string not int" false (conforms (String "x") TInt);
  Alcotest.(check bool) "null conforms anything" true (conforms Null TString);
  Alcotest.(check bool) "list of ints" true
    (conforms (List [ Int 1; Int 2 ]) (TList TInt));
  Alcotest.(check bool) "mixed list fails" false
    (conforms (List [ Int 1; String "a" ]) (TList TInt));
  Alcotest.(check bool) "anything conforms TAny" true (conforms (Bool true) TAny)

let test_value_codec () =
  let roundtrip v =
    let buf = Buffer.create 16 in
    Value.encode buf v;
    let v', pos = Value.decode (Buffer.contents buf) 0 in
    check Alcotest.int "consumed all" (Buffer.length buf) pos;
    check vpp "roundtrip" v v'
  in
  List.iter roundtrip
    [
      Value.Null;
      Value.Bool true;
      Value.Bool false;
      Value.Int (-42);
      Value.Float 3.25;
      Value.String "hello world; with: delimiters\nand newline";
      Value.Ref (Oid.of_int 7);
      Value.List [ Value.Int 1; Value.String "x"; Value.List [ Value.Null ] ];
    ]

let test_value_ty_codec () =
  let roundtrip ty =
    let buf = Buffer.create 16 in
    Value.encode_ty buf ty;
    let ty', _ = Value.decode_ty (Buffer.contents buf) 0 in
    Alcotest.(check bool) "ty roundtrip" true (Value.ty_equal ty ty')
  in
  List.iter roundtrip
    Value.[ TAny; TBool; TInt; TFloat; TString; TRef "Person"; TList (TList TInt) ]

let test_heap_basics () =
  let h = Heap.create () in
  let o = Heap.alloc h ~tag:"Person" in
  Alcotest.(check bool) "allocated" true (Heap.mem h o);
  check Alcotest.string "tag" "Person" (Heap.tag_of h o);
  check vpp "missing slot is null" Value.Null (Heap.get_slot h o "age");
  Heap.set_slot h o "age" (Value.Int 30);
  check vpp "read back" (Value.Int 30) (Heap.get_slot h o "age");
  Heap.remove_slot h o "age";
  check vpp "removed" Value.Null (Heap.get_slot h o "age");
  Heap.free h o;
  Alcotest.(check bool) "freed" false (Heap.mem h o)

let test_heap_swap_identity () =
  let h = Heap.create () in
  let a = Heap.alloc_with h ~tag:"A" [ ("x", Value.Int 1) ] in
  let b = Heap.alloc_with h ~tag:"B" [ ("x", Value.Int 2); ("y", Value.Int 3) ] in
  Heap.swap_identity h a b;
  check Alcotest.string "a has b's tag" "B" (Heap.tag_of h a);
  check vpp "a has b's x" (Value.Int 2) (Heap.get_slot h a "x");
  check vpp "a has b's y" (Value.Int 3) (Heap.get_slot h a "y");
  check Alcotest.string "b has a's tag" "A" (Heap.tag_of h b);
  check vpp "b has a's x" (Value.Int 1) (Heap.get_slot h b "x");
  check vpp "b lost y" Value.Null (Heap.get_slot h b "y")

let test_txn_abort () =
  let h = Heap.create () in
  let keep = Heap.alloc_with h ~tag:"K" [ ("v", Value.Int 1) ] in
  let result =
    Txn.with_txn h (fun () ->
        let o = Heap.alloc h ~tag:"T" in
        Heap.set_slot h o "v" (Value.Int 9);
        Heap.set_slot h keep "v" (Value.Int 2);
        Heap.free h keep;
        raise Txn.Abort)
  in
  Alcotest.(check bool) "aborted" true (result = None);
  Alcotest.(check bool) "keep restored" true (Heap.mem h keep);
  check vpp "keep value restored" (Value.Int 1) (Heap.get_slot h keep "v");
  check Alcotest.int "no leaked cells" 1 (Heap.cell_count h);
  check Alcotest.int "journals closed" 0 (Heap.journal_depth h)

let test_txn_commit_and_nesting () =
  let h = Heap.create () in
  let o = Heap.alloc_with h ~tag:"O" [ ("v", Value.Int 0) ] in
  let r =
    Txn.with_txn h (fun () ->
        Heap.set_slot h o "v" (Value.Int 1);
        (* inner committed txn must still be undone by outer abort *)
        ignore (Txn.with_txn h (fun () -> Heap.set_slot h o "v" (Value.Int 2)));
        raise Txn.Abort)
  in
  Alcotest.(check bool) "outer aborted" true (r = None);
  check vpp "inner commit undone by outer abort" (Value.Int 0)
    (Heap.get_slot h o "v");
  ignore (Txn.with_txn h (fun () -> Heap.set_slot h o "v" (Value.Int 5)));
  check vpp "commit sticks" (Value.Int 5) (Heap.get_slot h o "v")

let test_txn_inner_abort_outer_commit () =
  let h = Heap.create () in
  let o = Heap.alloc_with h ~tag:"O" [ ("a", Value.Int 0) ] in
  let r =
    Txn.with_txn h (fun () ->
        Heap.set_slot h o "a" (Value.Int 1);
        (* inner abort must roll back only its own changes *)
        let inner =
          Txn.with_txn h (fun () ->
              Heap.set_slot h o "b" (Value.Int 2);
              Heap.set_tag h o "Rolled";
              raise Txn.Abort)
        in
        Alcotest.(check bool) "inner aborted" true (inner = None);
        Heap.set_slot h o "c" (Value.Int 3);
        ())
  in
  Alcotest.(check bool) "outer committed" true (r = Some ());
  check vpp "outer write before inner" (Value.Int 1) (Heap.get_slot h o "a");
  check vpp "inner write undone" Value.Null (Heap.get_slot h o "b");
  check Alcotest.string "inner tag change undone" "O" (Heap.tag_of h o);
  check vpp "outer write after inner" (Value.Int 3) (Heap.get_slot h o "c");
  check Alcotest.int "journals closed" 0 (Heap.journal_depth h)

let test_txn_rollback_restores_slots_and_tag () =
  let h = Heap.create () in
  let o =
    Heap.alloc_with h ~tag:"Person"
      [ ("name", Value.String "ann"); ("age", Value.Int 30) ]
  in
  let r =
    Txn.with_txn h (fun () ->
        Heap.set_tag h o "Student";
        Heap.set_slot h o "age" (Value.Int 31);
        Heap.remove_slot h o "name";
        Heap.set_slot h o "gpa" (Value.Float 3.5);
        raise Txn.Abort)
  in
  Alcotest.(check bool) "aborted" true (r = None);
  check Alcotest.string "tag restored" "Person" (Heap.tag_of h o);
  check vpp "overwritten slot restored" (Value.Int 30) (Heap.get_slot h o "age");
  check vpp "removed slot restored" (Value.String "ann")
    (Heap.get_slot h o "name");
  check vpp "added slot gone" Value.Null (Heap.get_slot h o "gpa")

let test_txn_rollback_exception () =
  let h = Heap.create () in
  let o = Heap.alloc_with h ~tag:"O" [ ("a", Value.Int 1) ] in
  (* the first undo (of the newest entry) faults; the rest of the
     rollback must still run, the journal stack must stay balanced, and
     the error must surface *)
  Failpoint.arm "txn.rollback" Failpoint.Error_now;
  (try
     ignore
       (Txn.with_txn h (fun () ->
            Heap.set_slot h o "a" (Value.Int 2);
            Heap.set_slot h o "b" (Value.Int 3);
            raise Txn.Abort));
     Alcotest.fail "expected the rollback error to propagate"
   with Failpoint.Io_error _ -> ());
  Failpoint.reset ();
  check Alcotest.int "journals closed" 0 (Heap.journal_depth h);
  check vpp "older entry still undone" (Value.Int 1) (Heap.get_slot h o "a");
  check vpp "faulted entry's change survives" (Value.Int 3)
    (Heap.get_slot h o "b")

let test_index () =
  let idx = Index.create () in
  let o1 = Oid.of_int 1 and o2 = Oid.of_int 2 in
  Index.add idx (Value.Int 30) o1;
  Index.add idx (Value.Int 30) o2;
  Index.add idx (Value.Int 40) o1;
  Index.add idx (Value.Int 30) o1 (* duplicate, ignored *);
  check Alcotest.int "cardinal" 3 (Index.cardinal idx);
  check Alcotest.int "keys" 2 (Index.distinct_keys idx);
  check Alcotest.int "lookup 30" 2
    (Oid.Set.cardinal (Index.lookup idx (Value.Int 30)));
  Index.remove idx (Value.Int 30) o1;
  check Alcotest.int "lookup 30 after remove" 1
    (Oid.Set.cardinal (Index.lookup idx (Value.Int 30)));
  check Alcotest.int "lookup missing" 0
    (Oid.Set.cardinal (Index.lookup idx (Value.Int 99)))

let test_snapshot_roundtrip () =
  let h = Heap.create () in
  let o1 =
    Heap.alloc_with h ~tag:"Person"
      [ ("name", Value.String "ann with spaces"); ("age", Value.Int 30) ]
  in
  let _o2 =
    Heap.alloc_with h ~tag:"weird tag"
      [ ("friend", Value.Ref o1); ("xs", Value.List [ Value.Int 1; Value.Null ]) ]
  in
  let s = Snapshot.to_string h in
  let h' = Snapshot.of_string s in
  Alcotest.(check bool) "roundtrip equal" true (Snapshot.roundtrip_equal h h');
  (* a fresh alloc in the loaded heap must not collide *)
  let o3 = Heap.alloc h' ~tag:"New" in
  Alcotest.(check bool) "no oid collision" true (Oid.to_int o3 > Oid.to_int o1)

let test_snapshot_file () =
  let h = Heap.create () in
  ignore (Heap.alloc_with h ~tag:"T" [ ("x", Value.Int 1) ]);
  let path = Filename.temp_file "tse_snap" ".db" in
  Snapshot.save h path;
  let h' = Snapshot.load path in
  Sys.remove path;
  Alcotest.(check bool) "file roundtrip" true (Snapshot.roundtrip_equal h h')

let test_snapshot_malformed () =
  Alcotest.check_raises "missing end" (Failure "Snapshot: missing end marker")
    (fun () -> ignore (Snapshot.of_string "TSE-HEAP 1\ngen 3\n"));
  (* parse errors carry the line number and the offending line *)
  Alcotest.check_raises "bad line is located"
    (Failure "Snapshot: line 3: unrecognized line in \"cell nonsense\"")
    (fun () ->
      ignore (Snapshot.of_string "TSE-HEAP 1\ngen 3\ncell nonsense\nend\n"))

let test_snapshot_load_missing_file () =
  let path = Filename.temp_file "tse_snap" ".gone" in
  Sys.remove path;
  (* the error must name the file *)
  match Snapshot.load path with
  | _ -> Alcotest.fail "expected load of a missing file to fail"
  | exception Failure msg ->
    Alcotest.(check bool)
      (Printf.sprintf "%S mentions the path" msg)
      true
      (String.length msg >= String.length path
      && String.sub msg 0 14 = "Snapshot.load ")

let test_stats () =
  let s = Stats.create () in
  for _ = 1 to 10 do
    Stats.incr_oids s
  done;
  Stats.add_pointers s 4;
  for _ = 1 to 5 do
    Stats.incr_objects s
  done;
  check Alcotest.int "managerial bytes" ((10 * 8) + (4 * 8))
    (Stats.managerial_bytes s);
  check (Alcotest.float 0.001) "oids per object" 2.0 (Stats.oids_per_object s);
  Stats.reset s;
  check Alcotest.int "reset" 0 (Stats.managerial_bytes s)

(* Property tests *)

let value_gen =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         let base =
           oneof
             [
               return Value.Null;
               map (fun b -> Value.Bool b) bool;
               map (fun i -> Value.Int i) int;
               map (fun s -> Value.String s) string_printable;
               map (fun i -> Value.Ref (Oid.of_int (abs i + 1))) small_int;
             ]
         in
         if n <= 0 then base
         else
           frequency
             [
               (3, base);
               ( 1,
                 map
                   (fun vs -> Value.List vs)
                   (list_size (int_bound 4) (self (n / 2))) );
             ])

let value_arb = QCheck.make ~print:Value.to_string value_gen

let prop_value_roundtrip =
  QCheck.Test.make ~name:"value codec roundtrips (qcheck)" ~count:500 value_arb
    (fun v ->
      let buf = Buffer.create 16 in
      Value.encode buf v;
      let v', _ = Value.decode (Buffer.contents buf) 0 in
      Value.equal v v')

let prop_value_compare_total =
  QCheck.Test.make ~name:"value compare consistent with equal" ~count:500
    (QCheck.pair value_arb value_arb) (fun (a, b) ->
      Value.equal a b = (Value.compare a b = 0))

let suite =
  [
    Alcotest.test_case "oid generator" `Quick test_oid_gen;
    Alcotest.test_case "value conformance" `Quick test_value_conforms;
    Alcotest.test_case "value codec roundtrip" `Quick test_value_codec;
    Alcotest.test_case "value type codec roundtrip" `Quick test_value_ty_codec;
    Alcotest.test_case "heap basics" `Quick test_heap_basics;
    Alcotest.test_case "heap identity swap" `Quick test_heap_swap_identity;
    Alcotest.test_case "txn abort rolls back" `Quick test_txn_abort;
    Alcotest.test_case "txn commit and nesting" `Quick
      test_txn_commit_and_nesting;
    Alcotest.test_case "txn inner abort, outer commit" `Quick
      test_txn_inner_abort_outer_commit;
    Alcotest.test_case "txn rollback restores slots and tag" `Quick
      test_txn_rollback_restores_slots_and_tag;
    Alcotest.test_case "txn rollback survives a faulting undo" `Quick
      test_txn_rollback_exception;
    Alcotest.test_case "hash index" `Quick test_index;
    Alcotest.test_case "snapshot roundtrip" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "snapshot file save/load" `Quick test_snapshot_file;
    Alcotest.test_case "snapshot malformed input" `Quick test_snapshot_malformed;
    Alcotest.test_case "snapshot load names missing file" `Quick
      test_snapshot_load_missing_file;
    Alcotest.test_case "storage accounting" `Quick test_stats;
  ]
  @ List.map Qcheck_det.to_alcotest
      [ prop_value_roundtrip; prop_value_compare_total ]
