(* Parallel ≡ sequential oracle.  Every parallel path introduced by the
   OID-sharded execution layer — compiled select/count scans, two-phase
   reclassification, the snapshot codec and the WAL scanner — must be
   observationally identical to the sequential implementation at every
   domain count.  The sequential side always runs on a size-1 pool
   (which spawns nothing and is bit-identical to the pre-parallel
   code); the parallel side drops the work-size threshold to 1 so even
   these small fixtures take the sharded paths. *)

open Tse_store
open Tse_schema
open Tse_db
module Pool = Tse_pool.Pool
module Engine = Tse_query.Engine
module Indexes = Tse_query.Indexes
module Random_schema = Tse_workload.Random_schema
module Snapshot = Tse_store.Snapshot
module Wal = Tse_store.Wal

let domain_counts = [ 2; 3; 4 ]

(* Run [f ()] sequentially, then once per parallel domain count with the
   threshold floored, restoring the global pool afterwards. *)
let sequential_then_parallel f =
  let thr = Pool.threshold () in
  Fun.protect
    ~finally:(fun () ->
      Pool.set_global_size (Pool.default_domains ());
      Pool.set_threshold thr)
    (fun () ->
      Pool.set_threshold max_int;
      Pool.set_global_size 1;
      let baseline = f () in
      Pool.set_threshold 1;
      List.map
        (fun d ->
          Pool.set_global_size d;
          (d, f ()))
        domain_counts
      |> fun results -> (baseline, results))

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000)

(* ---------------------------------------------------------------- *)
(* select / count                                                    *)
(* ---------------------------------------------------------------- *)

let prop_select_count =
  QCheck.Test.make ~name:"parallel select/count == sequential" ~count:15
    seed_arb (fun seed ->
      let rs =
        Random_schema.generate ~seed ~classes:6 ~objects:150 ~virtuals:5 ()
      in
      let rng = Random.State.make [| seed; 1 |] in
      let preds =
        List.filter_map
          (fun _ ->
            let cid = Random_schema.random_class rng rs in
            match Random_schema.random_attr rng rs cid with
            | None -> None
            | Some a ->
              let k = Random.State.int rng 100 in
              let pred =
                if Random.State.bool rng then Expr.(attr a >= int k)
                else Expr.(attr a < int k)
              in
              Some (cid, pred))
          [ (); (); (); (); () ]
      in
      let idx = Indexes.create rs.db in
      List.for_all
        (fun (cid, pred) ->
          let run () =
            ( Engine.select rs.db idx cid pred,
              Engine.count rs.db idx cid pred )
          in
          let (seq_set, seq_n), par = sequential_then_parallel run in
          List.for_all
            (fun (d, (set, n)) ->
              if not (Oid.Set.equal set seq_set) then
                QCheck.Test.fail_reportf
                  "select diverged at %d domains (seed %d)" d seed;
              if n <> seq_n then
                QCheck.Test.fail_reportf
                  "count diverged at %d domains: %d vs %d (seed %d)" d n
                  seq_n seed;
              true)
            par)
        preds)

(* ---------------------------------------------------------------- *)
(* reclassification                                                  *)
(* ---------------------------------------------------------------- *)

(* Stale twins: generate twin databases from one seed, apply identical
   *direct heap* slot writes to both (bypassing [Database.set_attr]'s
   eager reclassification, so memberships go stale), then repair one
   with a sequential [reclassify_all] and the other with the parallel
   engine.  Fingerprints — classes, extents, every slot of every
   object — must match, and both must pass the consistency oracle. *)
let stale_twin seed =
  let rs = Random_schema.generate ~seed ~classes:5 ~objects:120 ~virtuals:6 () in
  let heap = Database.heap rs.db in
  List.iteri
    (fun i o ->
      if i mod 3 = 0 then
        let slots = Heap.slots heap o in
        let ints =
          List.filter (fun (_, v) -> match v with Value.Int _ -> true | _ -> false) slots
        in
        match ints with
        | [] -> ()
        | _ ->
          let k, _ = List.nth ints (i mod List.length ints) in
          Heap.set_slot heap o k (Value.Int (i * 17 mod 100)))
    (Database.objects rs.db);
  rs.db

let prop_reclassify =
  QCheck.Test.make ~name:"parallel reclassify == sequential" ~count:10
    seed_arb (fun seed ->
      let run () =
        let db = stale_twin seed in
        Database.reclassify_all db;
        (match Database.check db with
        | [] -> ()
        | p ->
          QCheck.Test.fail_reportf "inconsistent after reclassify:@.%s"
            (String.concat "\n" p));
        Tse_core.Verify.db_fingerprint db
      in
      let seq_fp, par = sequential_then_parallel run in
      List.for_all
        (fun (d, fp) ->
          if not (String.equal fp seq_fp) then
            QCheck.Test.fail_reportf
              "reclassify diverged at %d domains (seed %d)" d seed;
          true)
        par)

(* ---------------------------------------------------------------- *)
(* snapshot codec                                                    *)
(* ---------------------------------------------------------------- *)

let prop_snapshot =
  QCheck.Test.make ~name:"parallel snapshot codec == sequential" ~count:10
    seed_arb (fun seed ->
      let rs =
        Random_schema.generate ~seed ~classes:4 ~objects:200 ~virtuals:3 ()
      in
      let heap = Database.heap rs.db in
      let enc, par_encs = sequential_then_parallel (fun () -> Snapshot.to_string heap) in
      List.iter
        (fun (d, s) ->
          if not (String.equal s enc) then
            QCheck.Test.fail_reportf "snapshot encode diverged at %d domains" d)
        par_encs;
      let dec, par_decs =
        sequential_then_parallel (fun () -> Snapshot.of_string enc)
      in
      List.iter
        (fun (d, h) ->
          if not (Snapshot.roundtrip_equal dec h) then
            QCheck.Test.fail_reportf "snapshot decode diverged at %d domains" d)
        par_decs;
      (* corrupt input: both modes must reject with the same error *)
      let torn = String.sub enc 0 (String.length enc / 2) in
      let outcome () =
        match Snapshot.of_string torn with
        | _ -> "decoded"
        | exception Failure m -> "Failure: " ^ m
        | exception Invalid_argument m -> "Invalid_argument: " ^ m
      in
      let seq_err, par_errs = sequential_then_parallel outcome in
      List.for_all
        (fun (d, e) ->
          if not (String.equal e seq_err) then
            QCheck.Test.fail_reportf
              "corrupt-snapshot outcome diverged at %d domains: %s vs %s" d e
              seq_err;
          true)
        par_errs)

(* ---------------------------------------------------------------- *)
(* WAL scanner                                                       *)
(* ---------------------------------------------------------------- *)

let wal_log seed =
  let rng = Random.State.make [| seed; 2 |] in
  let buf = Buffer.create 1024 in
  for s = 1 to 40 do
    let entries =
      List.init
        (1 + Random.State.int rng 4)
        (fun i ->
          match Random.State.int rng 3 with
          | 0 -> Wal.Op (Heap.Set_slot (Oid.of_int i, "a", Value.Int s))
          | 1 -> Wal.Gen (s * 10)
          | _ -> Wal.Ext ("k", Printf.sprintf "payload-%d-%d" s i))
    in
    Buffer.add_string buf (Wal.encode_record ~seq:s entries)
  done;
  Buffer.contents buf

let scan_digest (sc : Wal.scan) =
  Printf.sprintf "batches=%d valid=%d file=%d reason=%s"
    (List.length sc.Wal.batches)
    sc.Wal.valid_len sc.Wal.file_len
    (Option.value ~default:"-" sc.Wal.reason)
  ^ String.concat ""
      (List.map
         (fun (b : Wal.batch) ->
           Printf.sprintf ";%d@%d:%d" b.Wal.seq b.Wal.start_off
             (List.length b.Wal.entries))
         sc.Wal.batches)

let prop_wal =
  QCheck.Test.make ~name:"parallel WAL scan == sequential" ~count:10 seed_arb
    (fun seed ->
      let log = wal_log seed in
      let check s =
        let seq, par = sequential_then_parallel (fun () -> scan_digest (Wal.scan_string s)) in
        List.iter
          (fun (d, dg) ->
            if not (String.equal dg seq) then
              QCheck.Test.fail_reportf
                "WAL scan diverged at %d domains:@.%s@.vs@.%s" d dg seq)
          par
      in
      check log;
      (* torn tail *)
      check (String.sub log 0 (String.length log - 7));
      (* corrupt byte mid-log: CRC failure position must agree *)
      let b = Bytes.of_string log in
      Bytes.set b (Bytes.length b / 2) '\xff';
      check (Bytes.to_string b);
      true)

let suite =
  List.map Qcheck_det.to_alcotest
    [ prop_select_count; prop_reclassify; prop_snapshot; prop_wal ]
