(* The static schema analyzer (lib/analysis) and the evolution admission
   gate (Tse_core.Admission): one crafted schema per diagnostic code, the
   derivation lints, the gate's three policies, and the qcheck property
   that every schema the random evolution generator can reach is
   diagnostic-clean. *)

open Tse_store
open Tse_schema
open Tse_db
open Tse_core
open Tse_workload
module Diagnostic = Tse_analysis.Diagnostic
module Typecheck = Tse_analysis.Typecheck
module Analysis = Tse_analysis.Analysis

let mk_graph () = Schema_graph.create ~gen:(Oid.Gen.create ())

let origin = Oid.of_int 0
let stored name ty = Prop.stored ~origin name ty
let method_ name body = Prop.method_ ~origin name body

(* A base class with one int, one string and one bool attribute. *)
let base_abc g =
  Schema_graph.register_base g ~name:"A"
    ~props:[ stored "i" Value.TInt; stored "s" Value.TString;
             stored "b" Value.TBool ]
    ~supers:[]

let codes report = List.map (fun d -> d.Diagnostic.code) report.Analysis.diagnostics
let error_codes report = List.map (fun d -> d.Diagnostic.code) (Analysis.errors report)

let has_code c report = List.mem c (codes report)

let check_code name c report =
  Alcotest.(check bool) (name ^ " reports " ^ c) true (has_code c report)

(* ---------------- expression typechecking, one code each ---------------- *)

let test_e101_undefined () =
  let g = mk_graph () in
  let a = base_abc g in
  Klass.add_local_prop (Schema_graph.find_exn g a)
    (method_ "m" (Expr.attr "nope"));
  let r = Analysis.analyze g in
  check_code "undefined attr" "E101" r;
  Alcotest.(check bool) "not clean" false (Analysis.is_clean r)

let test_e102_ambiguous () =
  let g = mk_graph () in
  let p1 = Schema_graph.register_base g ~name:"P1"
      ~props:[ stored "x" Value.TInt ] ~supers:[] in
  let p2 = Schema_graph.register_base g ~name:"P2"
      ~props:[ stored "x" Value.TInt ] ~supers:[] in
  let c = Schema_graph.register_base g ~name:"C" ~props:[] ~supers:[ p1; p2 ] in
  Klass.add_local_prop (Schema_graph.find_exn g c)
    (method_ "m" (Expr.attr "x"));
  check_code "conflict-ambiguous attr" "E102" (Analysis.analyze g)

let test_e103_unknown_class () =
  let g = mk_graph () in
  let a = base_abc g in
  Klass.add_local_prop (Schema_graph.find_exn g a)
    (method_ "m" (Expr.In_class "Ghost"));
  check_code "In_class nonexistent" "E103" (Analysis.analyze g)

let test_e104_type_mismatches () =
  let g = mk_graph () in
  let a = base_abc g in
  let k = Schema_graph.find_exn g a in
  Klass.add_local_prop k
    (method_ "bad_arith" (Expr.Arith (Expr.Add, Expr.attr "s", Expr.int 1)));
  Klass.add_local_prop k
    (method_ "bad_cmp" Expr.(attr "i" === attr "s"));
  Klass.add_local_prop k
    (method_ "bad_and" Expr.(attr "i" && attr "b"));
  Klass.add_local_prop k
    (method_ "null_order" Expr.(attr "i" < Const Value.Null));
  let r = Analysis.analyze g in
  Alcotest.(check int) "four E104s" 4
    (List.length (List.filter (String.equal "E104") (error_codes r)))

let test_e105_concat () =
  let g = mk_graph () in
  let a = base_abc g in
  Klass.add_local_prop (Schema_graph.find_exn g a)
    (method_ "m" (Expr.Concat (Expr.attr "i", Expr.str "x")));
  check_code "concat non-string" "E105" (Analysis.analyze g)

let test_e106_div_zero () =
  let g = mk_graph () in
  let a = base_abc g in
  Klass.add_local_prop (Schema_graph.find_exn g a)
    (method_ "m" (Expr.Arith (Expr.Div, Expr.attr "i", Expr.int 0)));
  check_code "constant division by zero" "E106" (Analysis.analyze g)

let test_e107_nonbool_predicate () =
  let g = mk_graph () in
  let a = base_abc g in
  ignore
    (Schema_graph.register_virtual g ~name:"V"
       (Klass.Select (a, Expr.Arith (Expr.Add, Expr.int 1, Expr.int 2)))
       []);
  check_code "non-boolean select predicate" "E107" (Analysis.analyze g)

let test_e110_dangling_source () =
  let g = mk_graph () in
  let a = base_abc g in
  let v =
    Schema_graph.register_virtual g ~name:"V"
      (Klass.Select (a, Expr.bool true)) []
  in
  ignore v;
  Schema_graph.remove g a;
  check_code "dangling select source" "E110" (Analysis.analyze g)

let test_e111_method_cycle () =
  let g = mk_graph () in
  let a = base_abc g in
  let k = Schema_graph.find_exn g a in
  Klass.add_local_prop k (method_ "m1" (Expr.attr "m2"));
  Klass.add_local_prop k (method_ "m2" (Expr.attr "m1"));
  let r = Analysis.analyze g in
  check_code "derived-method cycle" "E111" r;
  (* the cycle is one diagnostic, and the guarded recursion means the
     mutually recursive bodies are NOT also undefined/type errors *)
  Alcotest.(check bool) "no E101 from the recursion" false (has_code "E101" r);
  Alcotest.(check (list (list string))) "cycle members" [ [ "m1"; "m2" ] ]
    (Analysis.method_cycles g)

let test_e112_invisible_attr () =
  let g = mk_graph () in
  let a = base_abc g in
  ignore
    (Schema_graph.register_virtual g ~name:"V"
       (Klass.Select (a, Expr.(attr "zz" === int 1)))
       []);
  let r = Analysis.analyze g in
  check_code "predicate reads invisible attr" "E112" r;
  Alcotest.(check bool) "E101 reserved for method bodies" false
    (has_code "E101" r)

let test_w201_dead_branch () =
  let g = mk_graph () in
  let a = base_abc g in
  Klass.add_local_prop (Schema_graph.find_exn g a)
    (method_ "m" (Expr.If (Expr.bool true, Expr.int 1, Expr.int 2)));
  let r = Analysis.analyze g in
  check_code "constant if condition" "W201" r;
  Alcotest.(check bool) "warning only, still clean" true (Analysis.is_clean r)

let test_w202_unsat_predicate () =
  let g = mk_graph () in
  let a = base_abc g in
  ignore
    (Schema_graph.register_virtual g ~name:"Empty"
       (Klass.Select (a, Expr.bool false)) []);
  let r = Analysis.analyze g in
  check_code "constantly false predicate" "W202" r;
  Alcotest.(check bool) "warning only, still clean" true (Analysis.is_clean r)

let test_constant_true_not_flagged () =
  (* the translator derives identity classes as [select true]; the
     analyzer must not warn on them *)
  let g = mk_graph () in
  let a = base_abc g in
  ignore
    (Schema_graph.register_virtual g ~name:"Same"
       (Klass.Select (a, Expr.bool true)) []);
  let r = Analysis.analyze g in
  Alcotest.(check (list string)) "no diagnostics" [] (codes r)

let test_methods_followed_for_type () =
  (* a predicate over a derived method gets the method's inferred type *)
  let g = mk_graph () in
  let a = base_abc g in
  let k = Schema_graph.find_exn g a in
  Klass.add_local_prop k
    (method_ "double" (Expr.Arith (Expr.Mul, Expr.attr "i", Expr.int 2)));
  ignore
    (Schema_graph.register_virtual g ~name:"Big"
       (Klass.Select (a, Expr.(attr "double" >= int 10)))
       []);
  Alcotest.(check (list string)) "clean" [] (codes (Analysis.analyze g))

(* ---------------- capacity classification ---------------- *)

let test_capacity_facts () =
  let g = mk_graph () in
  let a = base_abc g in
  ignore
    (Schema_graph.register_virtual g ~name:"Sel"
       (Klass.Select (a, Expr.bool true)) []);
  ignore
    (Schema_graph.register_virtual g ~name:"Hid"
       (Klass.Hide ([ "s" ], a)) []);
  let refined = stored "extra" Value.TInt in
  ignore
    (Schema_graph.register_virtual g ~name:"RefS"
       (Klass.Refine ([ refined ], a)) [ refined ]);
  let derived = method_ "twice" (Expr.Arith (Expr.Mul, Expr.attr "i", Expr.int 2)) in
  ignore
    (Schema_graph.register_virtual g ~name:"RefM"
       (Klass.Refine ([ derived ], a)) [ derived ]);
  let r = Analysis.analyze g in
  Alcotest.(check (list (pair string string)))
    "facts"
    [ ("Hid", "reducing"); ("RefM", "preserving"); ("RefS", "augmenting");
      ("Sel", "preserving") ]
    (List.map (fun (c, cap) -> (c, Analysis.capacity_to_string cap)) r.Analysis.facts)

let test_capacity_of_change () =
  let cap c = Analysis.capacity_to_string (Admission.capacity_of_change c) in
  Alcotest.(check string) "add_attribute augments" "augmenting"
    (cap (Change.Add_attribute { cls = "C"; def = Change.attr "x" Value.TInt }));
  Alcotest.(check string) "delete_attribute reduces" "reducing"
    (cap (Change.Delete_attribute { cls = "C"; attr_name = "x" }));
  Alcotest.(check string) "add_method preserves" "preserving"
    (cap (Change.Add_method { cls = "C"; method_name = "m"; body = Expr.int 1 }))

(* ---------------- the admission gate ---------------- *)

let university_tsem () =
  let u = University.build () in
  let tsem = Tsem.of_database u.db in
  ignore
    (Tsem.define_view_by_names tsem ~name:"V"
       [ "Person"; "Student"; "Staff"; "TeachingStaff"; "SupportStaff";
         "TA"; "Grad"; "Grader" ]);
  tsem

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* Every crafted ill-typed change, with the diagnostic code the gate
   must reject it with. The acceptance criterion asks for >= 10. *)
let ill_typed_changes =
  [
    ( "method reads undefined attr",
      Change.Add_method
        { cls = "Person"; method_name = "m"; body = Expr.attr "nope" },
      "E101" );
    ( "method names unknown class",
      Change.Add_method
        { cls = "Person"; method_name = "m"; body = Expr.In_class "Ghost" },
      "E103" );
    ( "method adds string to int",
      Change.Add_method
        { cls = "Person"; method_name = "m";
          body = Expr.Arith (Expr.Add, Expr.attr "name", Expr.int 1) },
      "E104" );
    ( "method compares int to string",
      Change.Add_method
        { cls = "Person"; method_name = "m";
          body = Expr.(attr "age" === attr "name") },
      "E104" );
    ( "method orders against null",
      Change.Add_method
        { cls = "Person"; method_name = "m";
          body = Expr.(attr "age" < Const Value.Null) },
      "E104" );
    ( "method ands an int",
      Change.Add_method
        { cls = "Person"; method_name = "m";
          body = Expr.(attr "age" && bool true) },
      "E104" );
    ( "method concats an int",
      Change.Add_method
        { cls = "Person"; method_name = "m";
          body = Expr.Concat (Expr.attr "age", Expr.str "y") },
      "E105" );
    ( "method divides by constant zero",
      Change.Add_method
        { cls = "Person"; method_name = "m";
          body = Expr.Arith (Expr.Div, Expr.attr "age", Expr.int 0) },
      "E106" );
    ( "partition predicate not boolean",
      Change.Partition_class
        { cls = "Student"; predicate = Expr.Arith (Expr.Add, Expr.int 1, Expr.int 2);
          into_true = "Yes"; into_false = "No" },
      "E107" );
    ( "partition predicate reads invisible attr",
      Change.Partition_class
        { cls = "Student"; predicate = Expr.(attr "zz" === int 1);
          into_true = "Yes"; into_false = "No" },
      "E112" );
    ( "attribute default does not conform",
      Change.Add_attribute
        { cls = "Student";
          def = Change.attr ~default:(Value.Int 3) "flag" Value.TBool },
      "E108" );
    ( "partition predicate constantly false (lens)",
      Change.Partition_class
        { cls = "Student"; predicate = Expr.bool false;
          into_true = "Nobody"; into_false = "Everybody" },
      "E123" );
  ]

let test_gate_rejects_ill_typed () =
  let tsem = university_tsem () in
  Admission.set_policy Admission.Enforce;
  List.iter
    (fun (name, change, code) ->
      match Tsem.evolve tsem ~view:"V" change with
      | _ -> Alcotest.failf "%s: gate admitted the change" name
      | exception Change.Rejected msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: rejection names %s (got %S)" name code msg)
          true
          (contains ~needle:code msg))
    ill_typed_changes

let test_gate_rejection_leaves_view_intact () =
  let tsem = university_tsem () in
  Admission.set_policy Admission.Enforce;
  let v0 = (Tsem.current tsem "V").Tse_views.View_schema.version in
  (try
     ignore
       (Tsem.evolve tsem ~view:"V"
          (Change.Add_method
             { cls = "Person"; method_name = "m"; body = Expr.attr "nope" }))
   with Change.Rejected _ -> ());
  Alcotest.(check int) "view version unchanged" v0
    (Tsem.current tsem "V").Tse_views.View_schema.version

let test_gate_warn_policy_admits () =
  let tsem = university_tsem () in
  Admission.set_policy Admission.Warn;
  let v =
    Tsem.evolve tsem ~view:"V"
      (Change.Add_method
         { cls = "Person"; method_name = "warned"; body = Expr.attr "nope" })
  in
  Admission.set_policy Admission.Enforce;
  Alcotest.(check bool) "view advanced" true
    (v.Tse_views.View_schema.version > 0)

let test_gate_off_policy_skips () =
  let tsem = university_tsem () in
  Admission.set_policy Admission.Off;
  let checks0 = Tse_obs.Metrics.find_counter "analysis.gate_checks" in
  ignore
    (Tsem.evolve tsem ~view:"V"
       (Change.Add_method
          { cls = "Person"; method_name = "unchecked"; body = Expr.attr "nope" }));
  Admission.set_policy Admission.Enforce;
  Alcotest.(check int) "no gate check ran" checks0
    (Tse_obs.Metrics.find_counter "analysis.gate_checks")

let test_gate_counters () =
  let tsem = university_tsem () in
  Admission.set_policy Admission.Enforce;
  let checks0 = Tse_obs.Metrics.find_counter "analysis.gate_checks" in
  let rejections0 = Tse_obs.Metrics.find_counter "analysis.gate_rejections" in
  let aug0 = Tse_obs.Metrics.find_counter "analysis.capacity_augmenting" in
  ignore
    (Tsem.evolve tsem ~view:"V"
       (Change.Add_attribute
          { cls = "Student"; def = Change.attr "ok_attr" Value.TBool }));
  (try
     ignore
       (Tsem.evolve tsem ~view:"V"
          (Change.Add_method
             { cls = "Person"; method_name = "m"; body = Expr.attr "nope" }))
   with Change.Rejected _ -> ());
  Alcotest.(check int) "two gate checks"
    (checks0 + 2)
    (Tse_obs.Metrics.find_counter "analysis.gate_checks");
  Alcotest.(check int) "one rejection"
    (rejections0 + 1)
    (Tse_obs.Metrics.find_counter "analysis.gate_rejections");
  Alcotest.(check int) "one capacity-augmenting change"
    (aug0 + 1)
    (Tse_obs.Metrics.find_counter "analysis.capacity_augmenting")

let test_gate_well_typed_changes_admitted () =
  let tsem = university_tsem () in
  Admission.set_policy Admission.Enforce;
  let v =
    Tsem.evolve tsem ~view:"V"
      (Change.Add_method
         { cls = "Person"; method_name = "next_age";
           body = Expr.Arith (Expr.Add, Expr.attr "age", Expr.int 1) })
  in
  let v =
    ignore v;
    Tsem.evolve tsem ~view:"V"
      (Change.Partition_class
         { cls = "Student"; predicate = Expr.(attr "gpa" >= Expr.Const (Value.Float 3.5));
           into_true = "Honors"; into_false = "Regular" })
  in
  Alcotest.(check bool) "both admitted" true
    (v.Tse_views.View_schema.version >= 2);
  Alcotest.(check (list string)) "evolved schema analyzer-clean" []
    (error_codes (Analysis.analyze (Database.graph (Tsem.db tsem))))

let test_policy_of_string () =
  let pol = function
    | Some Admission.Enforce -> "enforce"
    | Some Admission.Warn -> "warn"
    | Some Admission.Off -> "off"
    | None -> "none"
  in
  Alcotest.(check string) "enforce" "enforce"
    (pol (Admission.policy_of_string "enforce"));
  Alcotest.(check string) "warn" "warn" (pol (Admission.policy_of_string "Warn"));
  Alcotest.(check string) "off" "off" (pol (Admission.policy_of_string "off"));
  Alcotest.(check string) "garbage" "none"
    (pol (Admission.policy_of_string "banana"))

(* ---------------- report plumbing ---------------- *)

let test_report_json_shape () =
  let g = mk_graph () in
  let a = base_abc g in
  Klass.add_local_prop (Schema_graph.find_exn g a)
    (method_ "m" (Expr.attr "nope"));
  let json = Analysis.report_to_json (Analysis.analyze g) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json mentions " ^ needle) true
        (contains ~needle json))
    [ "\"errors\":1"; "\"E101\""; "\"diagnostics\""; "\"facts\"";
      "\"classes_checked\"" ]

let test_diagnostic_ordering () =
  (* subject-first: (class, prop), then code — so reports group by class
     and are byte-stable regardless of emission order *)
  let w = Diagnostic.make Diagnostic.Warning ~code:"W201" "w" in
  let e = Diagnostic.make Diagnostic.Error ~code:"E104" "e" in
  Alcotest.(check bool) "subjectless: lower code first" true
    (Diagnostic.compare e w < 0);
  let da = Diagnostic.make ~cls:"A" Diagnostic.Warning ~code:"W202" "w" in
  let db_ = Diagnostic.make ~cls:"B" Diagnostic.Error ~code:"E101" "e" in
  Alcotest.(check bool) "class A before class B, severity ignored" true
    (Diagnostic.compare da db_ < 0);
  let p1 = Diagnostic.make ~cls:"A" ~prop:"p" Diagnostic.Error ~code:"E104" "e" in
  let p2 = Diagnostic.make ~cls:"A" ~prop:"q" Diagnostic.Error ~code:"E101" "e" in
  Alcotest.(check bool) "prop p before prop q, code ignored" true
    (Diagnostic.compare p1 p2 < 0)

(* Diagnostics, facts and lens entries are each sorted, so two renderings
   of the same logical schema are byte-identical even when the classes
   were registered in a different order (hashtable iteration order and
   TSE_DOMAINS sharding must not leak into reports). *)
let test_report_byte_stability () =
  let build order =
    let g = mk_graph () in
    let a = base_abc g in
    let mk = function
      | `Sel ->
        ignore
          (Schema_graph.register_virtual g ~name:"Sel"
             (Klass.Select (a, Expr.(attr "i" >= int 5))) [])
      | `Hid ->
        ignore
          (Schema_graph.register_virtual g ~name:"Hid"
             (Klass.Hide ([ "s" ], a)) [])
      | `Bad ->
        Klass.add_local_prop (Schema_graph.find_exn g a)
          (method_ "m" (Expr.attr "nope"))
    in
    List.iter mk order;
    let r = Analysis.analyze g in
    (Format.asprintf "%a" Analysis.pp_report r, Analysis.report_to_json r)
  in
  let t1, j1 = build [ `Sel; `Hid; `Bad ] in
  let t2, j2 = build [ `Bad; `Hid; `Sel ] in
  Alcotest.(check string) "text rendering byte-stable" t1 t2;
  Alcotest.(check string) "json rendering byte-stable" j1 j2;
  let t3, j3 = build [ `Sel; `Hid; `Bad ] in
  Alcotest.(check string) "text rendering run-stable" t1 t3;
  Alcotest.(check string) "json rendering run-stable" j1 j3

(* ---------------- code exhaustiveness ---------------- *)

(* Every code in the closed registry (Diagnostic.declared_codes) is
   produced by at least one crafted scenario, and no scenario produces a
   code outside the registry. *)
let test_code_exhaustiveness () =
  let produced = ref [] in
  let note codes = produced := codes @ !produced in
  (* expression typechecking + derivation lints, E101..E112/W201/W202 *)
  let g1 = mk_graph () in
  let a = base_abc g1 in
  let k = Schema_graph.find_exn g1 a in
  Klass.add_local_prop k (method_ "m_undef" (Expr.attr "nope"));
  Klass.add_local_prop k (method_ "m_ghost" (Expr.In_class "Ghost"));
  Klass.add_local_prop k
    (method_ "m_arith" (Expr.Arith (Expr.Add, Expr.attr "s", Expr.int 1)));
  Klass.add_local_prop k
    (method_ "m_concat" (Expr.Concat (Expr.attr "i", Expr.str "x")));
  Klass.add_local_prop k
    (method_ "m_div" (Expr.Arith (Expr.Div, Expr.attr "i", Expr.int 0)));
  Klass.add_local_prop k
    (method_ "m_if" (Expr.If (Expr.bool true, Expr.int 1, Expr.int 2)));
  ignore
    (Schema_graph.register_virtual g1 ~name:"NonBool"
       (Klass.Select (a, Expr.Arith (Expr.Add, Expr.int 1, Expr.int 2))) []);
  ignore
    (Schema_graph.register_virtual g1 ~name:"Invis"
       (Klass.Select (a, Expr.(attr "zz" === int 1))) []);
  note (codes (Analysis.analyze g1));
  (* E102 (needs a conflict), E111 (cycle suppresses other codes), E110
     (dangling source): separate graphs to avoid interference *)
  let g2 = mk_graph () in
  let p1 =
    Schema_graph.register_base g2 ~name:"P1" ~props:[ stored "x" Value.TInt ]
      ~supers:[]
  in
  let p2 =
    Schema_graph.register_base g2 ~name:"P2" ~props:[ stored "x" Value.TInt ]
      ~supers:[]
  in
  let c = Schema_graph.register_base g2 ~name:"C" ~props:[] ~supers:[ p1; p2 ] in
  Klass.add_local_prop (Schema_graph.find_exn g2 c) (method_ "m" (Expr.attr "x"));
  let kc = Schema_graph.find_exn g2 c in
  Klass.add_local_prop kc (method_ "m1" (Expr.attr "m2"));
  Klass.add_local_prop kc (method_ "m2" (Expr.attr "m1"));
  note (codes (Analysis.analyze g2));
  let g3 = mk_graph () in
  let a3 = base_abc g3 in
  ignore
    (Schema_graph.register_virtual g3 ~name:"V"
       (Klass.Select (a3, Expr.bool true)) []);
  Schema_graph.remove g3 a3;
  note (codes (Analysis.analyze g3));
  (* gate-only codes: E108 (attribute default conformance), E123 on a
     proposed partition, W212 on a proposed coalesce *)
  let tsem = university_tsem () in
  let db = Tsem.db tsem in
  let view = Tsem.current tsem "V" in
  let gate change =
    note
      (List.map (fun d -> d.Diagnostic.code) (Admission.check db view change))
  in
  gate
    (Change.Add_attribute
       { cls = "Student";
         def = Change.attr ~default:(Value.Int 3) "flag" Value.TBool });
  gate
    (Change.Partition_class
       { cls = "Student"; predicate = Expr.bool false; into_true = "T";
         into_false = "F" });
  gate (Change.Coalesce_classes { a = "Student"; b = "Staff"; as_name = "M" });
  (* lens verdict codes over one crafted database: E120..E123, W210..W213 *)
  let ldb = Database.create () in
  let lg = Database.graph ldb in
  let reg name props supers =
    let cid = Schema_graph.register_base lg ~name ~props ~supers in
    Database.note_new_class ldb cid;
    cid
  in
  let b0 =
    reg "B0"
      [ stored "a" Value.TInt;
        Prop.stored ~required:true ~origin "key" Value.TInt ]
      []
  in
  let b1 = reg "B1" [ stored "a" Value.TInt ] [] in
  let b2 = reg "B2" [ stored "c" Value.TInt ] [ b0 ] in
  let module Ops = Tse_algebra.Ops in
  ignore (Ops.select ldb ~name:"LSel" ~src:b0 Expr.(attr "a" >= int 5));
  ignore (Ops.select ldb ~name:"LEmpty" ~src:b0 (Expr.bool false));
  ignore (Ops.hide ldb ~name:"LHide" ~props:[ "key" ] ~src:b0);
  ignore (Ops.union ldb ~name:"LUnion" b0 b1);
  ignore (Ops.intersect ldb ~name:"LInter" b0 b1);
  ignore (Ops.difference ldb ~name:"LDiff" b0 b1);
  ignore (Ops.difference ldb ~name:"LDiffEmpty" b2 b0);
  note
    (List.map
       (fun d -> d.Diagnostic.code)
       (Tse_analysis.Lens.diagnostics (Tse_analysis.Lens.analyze lg)));
  let produced = List.sort_uniq String.compare !produced in
  let declared = List.map fst Diagnostic.declared_codes in
  List.iter
    (fun code ->
      Alcotest.(check bool)
        (Printf.sprintf "declared code %s is produced by some check" code)
        true (List.mem code produced))
    declared;
  List.iter
    (fun code ->
      Alcotest.(check bool)
        (Printf.sprintf "produced code %s is declared" code)
        true (List.mem code declared))
    produced

(* ---------------- the qcheck property ---------------- *)

(* Every schema reachable by the random evolution generator is
   diagnostic-clean: the generator only produces well-typed predicates
   and bodies, and the translator only derives well-formed classes — so
   the analyzer finding an error on a reachable schema means either a
   translator bug or an analyzer false positive. *)
let prop_reachable_schemas_clean =
  QCheck.Test.make
    ~name:"random evolution reaches only diagnostic-clean schemas" ~count:40
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000))
    (fun seed ->
      let rng = Random.State.make [| seed; 59 |] in
      let rs = Random_schema.generate ~seed ~classes:10 ~objects:10 () in
      let tsem = Tsem.of_database rs.db in
      ignore
        (Tsem.define_view_by_names tsem ~name:"V" (Random_schema.class_names rs));
      for _ = 1 to 5 do
        try ignore (Tsem.evolve tsem ~view:"V" (Test_property.random_change rng rs))
        with Change.Rejected _ | Invalid_argument _ | Failure _ ->
          (* translator precondition rejections — either way the
             schema we are left with must still analyze clean *)
          ()
      done;
      Analysis.errors (Analysis.analyze (Database.graph rs.db)) = [])

let suite =
  [
    Alcotest.test_case "E101 undefined property" `Quick test_e101_undefined;
    Alcotest.test_case "E102 ambiguous property" `Quick test_e102_ambiguous;
    Alcotest.test_case "E103 unknown class" `Quick test_e103_unknown_class;
    Alcotest.test_case "E104 type mismatches" `Quick test_e104_type_mismatches;
    Alcotest.test_case "E105 concat non-string" `Quick test_e105_concat;
    Alcotest.test_case "E106 constant division by zero" `Quick test_e106_div_zero;
    Alcotest.test_case "E107 non-boolean predicate" `Quick
      test_e107_nonbool_predicate;
    Alcotest.test_case "E110 dangling source" `Quick test_e110_dangling_source;
    Alcotest.test_case "E111 derived-method cycle" `Quick test_e111_method_cycle;
    Alcotest.test_case "E112 invisible attribute" `Quick test_e112_invisible_attr;
    Alcotest.test_case "W201 dead branch" `Quick test_w201_dead_branch;
    Alcotest.test_case "W202 unsatisfiable predicate" `Quick
      test_w202_unsat_predicate;
    Alcotest.test_case "constant-true predicate is not flagged" `Quick
      test_constant_true_not_flagged;
    Alcotest.test_case "derived methods followed for their type" `Quick
      test_methods_followed_for_type;
    Alcotest.test_case "capacity facts per derivation" `Quick test_capacity_facts;
    Alcotest.test_case "capacity of changes" `Quick test_capacity_of_change;
    Alcotest.test_case "gate rejects every crafted ill-typed change" `Quick
      test_gate_rejects_ill_typed;
    Alcotest.test_case "gate rejection leaves the view intact" `Quick
      test_gate_rejection_leaves_view_intact;
    Alcotest.test_case "warn policy admits with diagnostics" `Quick
      test_gate_warn_policy_admits;
    Alcotest.test_case "off policy skips the gate" `Quick
      test_gate_off_policy_skips;
    Alcotest.test_case "gate feeds the analysis.* counters" `Quick
      test_gate_counters;
    Alcotest.test_case "well-typed changes pass the gate" `Quick
      test_gate_well_typed_changes_admitted;
    Alcotest.test_case "TSE_ANALYZE parsing" `Quick test_policy_of_string;
    Alcotest.test_case "report JSON shape" `Quick test_report_json_shape;
    Alcotest.test_case "diagnostic ordering" `Quick test_diagnostic_ordering;
    Alcotest.test_case "report renderings are byte-stable" `Quick
      test_report_byte_stability;
    Alcotest.test_case "every declared code is produced" `Quick
      test_code_exhaustiveness;
    Qcheck_det.to_alcotest prop_reachable_schemas_clean;
  ]
