(* Regression corpus for the known Proposition B / delete_edge bug
   (ROADMAP "Known bugs"): the generator seeds below make the random
   Proposition B property fail at the seed commit. Each is replayed here
   as an EXPECTED-FAILURE case — the test asserts the bug still
   reproduces, so the flake is measurable instead of anecdotal, and the
   session that fixes the translator must flip these assertions to
   Clean.

   The replay duplicates test/test_property.ml's prop_view_independence
   body (including its random_change generator) verbatim: this binary is
   a separate executable and must stay in sync with it by hand.

   The static analyzer runs over every failing schema and its
   diagnostics are recorded: the corpus demonstrates that the bug is a
   semantic derivation error (wrong membership after delete_edge), not
   an ill-typed schema — the analyzer finds zero errors. *)

open Tse_store
open Tse_schema
open Tse_db
open Tse_core
open Tse_workload

(* Verbatim copy of test/test_property.ml's random_change. *)
let random_change rng (rs : Random_schema.t) =
  let g = Database.graph rs.db in
  let cls cid = Schema_graph.name_of g cid in
  let c1 = Random_schema.random_class rng rs in
  let c2 = Random_schema.random_class rng rs in
  match Random.State.int rng 8 with
  | 0 ->
    Change.Add_attribute
      {
        cls = cls c1;
        def =
          Change.attr (Printf.sprintf "n%d" (Random.State.int rng 1000)) Value.TInt;
      }
  | 1 -> begin
    match Random_schema.random_attr rng rs c1 with
    | Some a -> Change.Delete_attribute { cls = cls c1; attr_name = a }
    | None -> Change.Delete_class { cls = cls c1 }
  end
  | 2 ->
    Change.Add_method
      {
        cls = cls c1;
        method_name = Printf.sprintf "m%d" (Random.State.int rng 1000);
        body = Expr.int 1;
      }
  | 3 -> Change.Add_edge { sup = cls c1; sub = cls c2 }
  | 4 -> Change.Delete_edge { sup = cls c1; sub = cls c2; connected_to = None }
  | 5 ->
    Change.Add_class
      {
        cls = Printf.sprintf "N%d" (Random.State.int rng 1000);
        connected_to = Some (cls c1);
      }
  | 6 -> Change.Delete_class { cls = cls c1 }
  | _ ->
    Change.Insert_class
      {
        cls = Printf.sprintf "I%d" (Random.State.int rng 1000);
        sup = cls c1;
        sub = cls c2;
      }

type outcome =
  | Clean  (** Proposition B held: the bug no longer reproduces *)
  | Violation of string list
      (** property body returned false: fingerprint drift and/or
          consistency-oracle problems *)
  | Crashed of string  (** evolve raised something besides [Rejected] *)

let replay seed =
  let rng = Random.State.make [| seed; 23 |] in
  let rs = Random_schema.generate ~seed ~classes:10 ~objects:20 () in
  let tsem = Tsem.of_database rs.db in
  let names = Random_schema.class_names rs in
  let half = List.filteri (fun i _ -> i mod 2 = 0) names in
  ignore (Tsem.define_view_by_names tsem ~name:"MINE" names);
  ignore (Tsem.define_view_by_names tsem ~name:"OTHER" half);
  let before = Verify.view_fingerprint rs.db (Tsem.current tsem "OTHER") in
  let outcome =
    match
      for _ = 1 to 5 do
        try ignore (Tsem.evolve tsem ~view:"MINE" (random_change rng rs))
        with Change.Rejected _ -> ()
      done
    with
    | () ->
      let after = Verify.view_fingerprint rs.db (Tsem.current tsem "OTHER") in
      let issues =
        (if String.equal before after then []
         else [ "OTHER view fingerprint changed" ])
        @ Database.check rs.db
      in
      if issues = [] then Clean else Violation issues
    | exception e -> Crashed (Printexc.to_string e)
  in
  (rs, outcome)

let pp_outcome = function
  | Clean -> "clean"
  | Violation issues -> "violation: " ^ String.concat "; " issues
  | Crashed msg -> "crashed: " ^ msg

(* The analyzer's verdict on the schema the failing replay left behind:
   recorded (printed) for the corpus, and asserted error-free — the bug
   is semantic, not a typing error the analyzer could have gated. *)
let analyze_failing_schema seed (rs : Random_schema.t) =
  let report = Tse_analysis.Analysis.analyze (Database.graph rs.db) in
  Printf.printf "seed %d analyzer verdict: %d errors, %d warnings over %d \
                 classes / %d exprs\n"
    seed
    (List.length (Tse_analysis.Analysis.errors report))
    (List.length (Tse_analysis.Analysis.warnings report))
    report.Tse_analysis.Analysis.classes_checked
    report.Tse_analysis.Analysis.exprs_checked;
  List.iter
    (fun d ->
      Printf.printf "  %s\n" (Format.asprintf "%a" Tse_analysis.Diagnostic.pp d))
    report.Tse_analysis.Analysis.diagnostics;
  Alcotest.(check int)
    (Printf.sprintf "seed %d: failing schema has no analyzer errors" seed)
    0
    (List.length (Tse_analysis.Analysis.errors report))

let expect_violation seed () =
  let rs, outcome = replay seed in
  Printf.printf "seed %d: %s\n" seed (pp_outcome outcome);
  (match outcome with
  | Violation _ -> ()
  | Clean ->
    Alcotest.failf
      "seed %d no longer reproduces the Proposition B violation — the bug \
       is fixed; update ROADMAP.md and flip this regression to expect Clean"
      seed
  | Crashed msg ->
    Alcotest.failf "seed %d changed failure mode: crashed with %s" seed msg);
  analyze_failing_schema seed rs

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let expect_crash seed fragment () =
  let rs, outcome = replay seed in
  Printf.printf "seed %d: %s\n" seed (pp_outcome outcome);
  (match outcome with
  | Crashed msg ->
    if not (contains ~needle:fragment msg) then
      Alcotest.failf "seed %d crashed with %S (expected it to mention %S)"
        seed msg fragment
  | Clean ->
    Alcotest.failf
      "seed %d no longer crashes — the bug is fixed; update ROADMAP.md and \
       flip this regression to expect Clean"
      seed
  | Violation issues ->
    Alcotest.failf "seed %d changed failure mode: violation (%s)" seed
      (String.concat "; " issues));
  analyze_failing_schema seed rs

let () =
  Alcotest.run "tse-regression"
    [
      ( "proposition-b-corpus",
        [
          Alcotest.test_case "seed 260 (delete_edge membership)" `Quick
            (expect_violation 260);
          Alcotest.test_case "seed 50 (delete_edge membership)" `Quick
            (expect_violation 50);
          Alcotest.test_case "seed 88 (delete_edge membership)" `Quick
            (expect_violation 88);
          Alcotest.test_case "seed 8041 (delete_edge membership)" `Quick
            (expect_violation 8041);
          Alcotest.test_case "seed 3153 (refine_from name collision)" `Quick
            (expect_crash 3153 "already defined");
        ] );
    ]
