(* Regression corpus for the Proposition B / delete_edge bug that was
   pinned here as expected-failures between the seed commit and the
   translator fix (ROADMAP "Known bugs", DESIGN.md §15): the generator
   seeds below used to make the random Proposition B property fail.

   The root cause was [Translator.reaches_avoiding]'s hypothetical: it
   excluded every path through the *whole* derivation source lineage of
   the deleted edge's subclass end, so a legitimate alternate is-a route
   through another view class (e.g. C1 -> C2 -> C6 -> C6') was treated
   as "the deleted edge wearing an older name" and the translator
   manufactured difference classes that contradicted the memberships its
   own stitching implied. The GetPut law harness (test/test_lens.ml)
   localized the disagreement to the translator side; the fix blocks
   only version-to-version edges of the two endpoints. Seed 3153 pinned
   a second bug on the same corpus: add_attribute propagation crashed on
   a subclass that already inherited a same-named property along another
   path. Each seed is now asserted to replay Clean — a reappearance of
   either bug fails this suite.

   The replay duplicates test/test_property.ml's prop_view_independence
   body (including its random_change generator) verbatim: this binary is
   a separate executable and must stay in sync with it by hand.

   The static analyzer runs over every replayed schema and its
   diagnostics are recorded: the corpus demonstrates the historical bug
   was a semantic derivation error (wrong membership after delete_edge),
   not an ill-typed schema — the analyzer finds zero errors.

   Setting PROPB_SWEEP=N additionally replays seeds 0..N-1 and asserts
   zero disagreements — the 10k-seed sweep of the acceptance criterion:

     PROPB_SWEEP=10000 dune exec test/regression/test_regression.exe *)

open Tse_store
open Tse_schema
open Tse_db
open Tse_core
open Tse_workload

(* Verbatim copy of test/test_property.ml's random_change. *)
let random_change rng (rs : Random_schema.t) =
  let g = Database.graph rs.db in
  let cls cid = Schema_graph.name_of g cid in
  let c1 = Random_schema.random_class rng rs in
  let c2 = Random_schema.random_class rng rs in
  match Random.State.int rng 8 with
  | 0 ->
    Change.Add_attribute
      {
        cls = cls c1;
        def =
          Change.attr (Printf.sprintf "n%d" (Random.State.int rng 1000)) Value.TInt;
      }
  | 1 -> begin
    match Random_schema.random_attr rng rs c1 with
    | Some a -> Change.Delete_attribute { cls = cls c1; attr_name = a }
    | None -> Change.Delete_class { cls = cls c1 }
  end
  | 2 ->
    Change.Add_method
      {
        cls = cls c1;
        method_name = Printf.sprintf "m%d" (Random.State.int rng 1000);
        body = Expr.int 1;
      }
  | 3 -> Change.Add_edge { sup = cls c1; sub = cls c2 }
  | 4 -> Change.Delete_edge { sup = cls c1; sub = cls c2; connected_to = None }
  | 5 ->
    Change.Add_class
      {
        cls = Printf.sprintf "N%d" (Random.State.int rng 1000);
        connected_to = Some (cls c1);
      }
  | 6 -> Change.Delete_class { cls = cls c1 }
  | _ ->
    Change.Insert_class
      {
        cls = Printf.sprintf "I%d" (Random.State.int rng 1000);
        sup = cls c1;
        sub = cls c2;
      }

type outcome =
  | Clean  (** Proposition B held *)
  | Violation of string list
      (** property body returned false: fingerprint drift and/or
          consistency-oracle problems *)
  | Crashed of string  (** evolve raised something besides [Rejected] *)

let replay seed =
  let rng = Random.State.make [| seed; 23 |] in
  let rs = Random_schema.generate ~seed ~classes:10 ~objects:20 () in
  let tsem = Tsem.of_database rs.db in
  let names = Random_schema.class_names rs in
  let half = List.filteri (fun i _ -> i mod 2 = 0) names in
  ignore (Tsem.define_view_by_names tsem ~name:"MINE" names);
  ignore (Tsem.define_view_by_names tsem ~name:"OTHER" half);
  let before = Verify.view_fingerprint rs.db (Tsem.current tsem "OTHER") in
  let outcome =
    match
      for _ = 1 to 5 do
        try ignore (Tsem.evolve tsem ~view:"MINE" (random_change rng rs))
        with Change.Rejected _ -> ()
      done
    with
    | () ->
      let after = Verify.view_fingerprint rs.db (Tsem.current tsem "OTHER") in
      let issues =
        (if String.equal before after then []
         else [ "OTHER view fingerprint changed" ])
        @ Database.check rs.db
      in
      if issues = [] then Clean else Violation issues
    | exception e -> Crashed (Printexc.to_string e)
  in
  (rs, outcome)

let pp_outcome = function
  | Clean -> "clean"
  | Violation issues -> "violation: " ^ String.concat "; " issues
  | Crashed msg -> "crashed: " ^ msg

(* The analyzer's verdict on the schema the replay left behind: recorded
   (printed) for the corpus, and asserted error-free. *)
let analyze_replayed_schema seed (rs : Random_schema.t) =
  let report = Tse_analysis.Analysis.analyze (Database.graph rs.db) in
  Printf.printf "seed %d analyzer verdict: %d errors, %d warnings over %d \
                 classes / %d exprs\n"
    seed
    (List.length (Tse_analysis.Analysis.errors report))
    (List.length (Tse_analysis.Analysis.warnings report))
    report.Tse_analysis.Analysis.classes_checked
    report.Tse_analysis.Analysis.exprs_checked;
  List.iter
    (fun d ->
      Printf.printf "  %s\n" (Format.asprintf "%a" Tse_analysis.Diagnostic.pp d))
    report.Tse_analysis.Analysis.diagnostics;
  Alcotest.(check int)
    (Printf.sprintf "seed %d: replayed schema has no analyzer errors" seed)
    0
    (List.length (Tse_analysis.Analysis.errors report))

let expect_clean seed () =
  let rs, outcome = replay seed in
  Printf.printf "seed %d: %s\n" seed (pp_outcome outcome);
  (match outcome with
  | Clean -> ()
  | Violation issues ->
    Alcotest.failf
      "seed %d: the Proposition B violation is back (%s) — see DESIGN.md §15"
      seed
      (String.concat "; " issues)
  | Crashed msg -> Alcotest.failf "seed %d crashed: %s" seed msg);
  analyze_replayed_schema seed rs

(* The full-corpus sweep of the acceptance criterion, gated behind
   PROPB_SWEEP so `dune runtest` stays fast. *)
let sweep n () =
  let bad = ref [] in
  for seed = 0 to n - 1 do
    match replay seed with
    | _, Clean -> ()
    | _, outcome -> bad := (seed, pp_outcome outcome) :: !bad
  done;
  List.iter
    (fun (seed, what) -> Printf.printf "seed %d: %s\n" seed what)
    (List.rev !bad);
  Alcotest.(check int)
    (Printf.sprintf "disagreements over %d seeds" n)
    0 (List.length !bad)

let () =
  let corpus =
    [
      Alcotest.test_case "seed 260 (delete_edge membership)" `Quick
        (expect_clean 260);
      Alcotest.test_case "seed 50 (delete_edge membership)" `Quick
        (expect_clean 50);
      Alcotest.test_case "seed 88 (delete_edge membership)" `Quick
        (expect_clean 88);
      Alcotest.test_case "seed 8041 (delete_edge membership)" `Quick
        (expect_clean 8041);
      Alcotest.test_case "seed 3153 (refine_from name collision)" `Quick
        (expect_clean 3153);
    ]
  in
  let sweep_cases =
    match int_of_string_opt (try Sys.getenv "PROPB_SWEEP" with Not_found -> "")
    with
    | Some n when n > 0 ->
      [ Alcotest.test_case (Printf.sprintf "sweep %d seeds" n) `Slow (sweep n) ]
    | Some _ | None -> []
  in
  Alcotest.run "tse-regression"
    [ ("proposition-b-corpus", corpus @ sweep_cases) ]
