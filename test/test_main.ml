let () =
  Alcotest.run "tse"
    [
      ("obs", Test_obs.suite);
      ("analysis", Test_analysis.suite);
      ("lens", Test_lens.suite);
      ("store", Test_store.suite);
      ("schema", Test_schema.suite);
      ("objmodel", Test_objmodel.suite);
      ("db", Test_db.suite);
      ("algebra", Test_algebra.suite);
      ("update", Test_update.suite);
      ("views", Test_views.suite);
      ("tse", Test_tse.suite);
      ("baselines", Test_baselines.suite);
      ("property", Test_property.suite);
      ("catalog", Test_catalog.suite);
      ("surface", Test_surface.suite);
      ("integration", Test_integration.suite);
      ("classifier", Test_classifier.suite);
      ("extensions", Test_extensions.suite);
      ("macros", Test_macros.suite);
      ("query", Test_query.suite);
      ("concurrency", Test_concurrency.suite);
      ("durability", Test_durability.suite);
      ("evolution-recovery", Test_evolution_recovery.suite);
      ("pool", Test_pool.suite);
      ("parallel", Test_parallel.suite);
      (* last: its sampler tests call Metrics.reset, which zeroes the
         global registry counters other suites read deltas from *)
      ("telemetry", Test_telemetry.suite);
    ]
