(* The lens-law harness: the static translatability verdicts of
   Tse_analysis.Lens checked against the real put path
   (Tse_update.Generic over Tse_db.Database).

   The lens frame: a view class's derivation is [get], Generic update
   propagation is [put]. The laws checked here:
   - PutGet — after a successful put through the view, the view shows
     exactly the written state: a created/added object is in the extent,
     written attribute values read back, and the consistency oracle
     (Database.check) is clean;
   - GetPut — putting back what get shows is a no-op: writing an
     attribute's current value is always accepted and changes nothing.

   The soundness oracle cross-validates the static verdicts:
   - Translatable  => the put is never rejected and the laws hold;
   - Conditional c => if the put is accepted, the laws hold and [c]
     evaluates true on the post-state object; a rejection is allowed
     (and must leave the database unchanged);
   - Rejected _    => no law obligation, but the database must stay
     consistent whatever the runtime does.

   A statically-Translatable update that fails a law at runtime is
   exactly the class of bug that pinned Proposition B for five PRs
   (DESIGN.md Section 15) — this harness is the tripwire. *)

open Tse_store
open Tse_schema
open Tse_db
open Tse_update
module Ops = Tse_algebra.Ops
module Lens = Tse_analysis.Lens
module University = Tse_workload.University

let o0 = Oid.of_int 0
let stored = Prop.stored ~origin:o0

let fresh_db () =
  let db = Database.create () in
  let reg name props supers =
    let cid =
      Schema_graph.register_base (Database.graph db) ~name ~props ~supers
    in
    Database.note_new_class db cid;
    cid
  in
  (db, reg)

let classify db cid u = Lens.classify (Database.graph db) cid u

let check_verdict what expected got =
  Alcotest.(check string) what expected (Lens.verdict_to_string got)

let rejected_with code = function
  | Lens.Rejected c -> String.equal c code
  | Lens.Translatable | Lens.Conditional _ -> false

let conditional = function Lens.Conditional _ -> true | _ -> false

let expect_generic_rejected what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Generic.Rejected" what
  | exception Generic.Rejected _ -> ()

let check_clean db what =
  Alcotest.(check (list string)) (what ^ ": consistency oracle clean") []
    (Database.check db)

(* ---------------- crafted verdicts per operator ---------------- *)

let test_select_verdicts () =
  let db, reg = fresh_db () in
  let b = reg "B" [ stored "a" Value.TInt; stored "s" Value.TString ] [] in
  let pred = Expr.(attr "a" >= int 5) in
  let v = Ops.select db ~name:"V" ~src:b pred in
  check_verdict "create through select" "conditional on (a >= 5)"
    (classify db v Lens.Create);
  check_verdict "add through select" "conditional on (a >= 5)"
    (classify db v Lens.Add);
  check_verdict "delete through select" "translatable"
    (classify db v Lens.Delete);
  check_verdict "remove through select" "translatable"
    (classify db v Lens.Remove);
  check_verdict "set of predicate-read attr" "conditional on (a >= 5)"
    (classify db v (Lens.Set "a"));
  check_verdict "set of unread attr" "translatable"
    (classify db v (Lens.Set "s"));
  (* the translator's identity selects: a constant-true predicate
     imposes no condition *)
  let id = Ops.select db ~name:"Vid" ~src:b (Expr.bool true) in
  check_verdict "create through identity select" "translatable"
    (classify db id Lens.Create)

let test_select_false_e123 () =
  let db, reg = fresh_db () in
  let b = reg "B" [ stored "a" Value.TInt ] [] in
  let v = Ops.select db ~name:"Empty" ~src:b (Expr.bool false) in
  Alcotest.(check bool) "create rejected E123" true
    (rejected_with "E123" (classify db v Lens.Create));
  Alcotest.(check bool) "add rejected E123" true
    (rejected_with "E123" (classify db v Lens.Add));
  Alcotest.(check bool) "set rejected E123" true
    (rejected_with "E123" (classify db v (Lens.Set "a")));
  (* runtime agreement: no create can land in the empty view *)
  expect_generic_rejected "create through Empty" (fun () ->
      Generic.create db v ~init:[ ("a", Value.Int 1) ]);
  check_clean db "after rejected create"

let test_hide_e120 () =
  let db, reg = fresh_db () in
  let b =
    reg "B"
      [ stored "a" Value.TInt; stored ~required:true "key" Value.TInt ]
      []
  in
  let v = Ops.hide db ~name:"NoKey" ~props:[ "key" ] ~src:b in
  (* create cannot initialise the required, default-less hidden attr *)
  Alcotest.(check bool) "create rejected E120" true
    (rejected_with "E120" (classify db v Lens.Create));
  (* a set of the hidden attr could never be read back through the view *)
  Alcotest.(check bool) "set hidden rejected E120" true
    (rejected_with "E120" (classify db v (Lens.Set "key")));
  (* adding an existing object needs no initialiser: translatable *)
  check_verdict "add through hide" "translatable" (classify db v Lens.Add);
  check_verdict "set visible attr" "translatable"
    (classify db v (Lens.Set "a"));
  (* runtime agreement: the required hidden attribute is not assignable
     through the view, so every create is refused *)
  expect_generic_rejected "create without key" (fun () ->
      Generic.create db v ~init:[ ("a", Value.Int 1) ]);
  expect_generic_rejected "create with key" (fun () ->
      Generic.create db v ~init:[ ("key", Value.Int 1) ]);
  (* with a default the hidden attr is initialisable: translatable *)
  let b2 =
    reg "B2" [ stored ~default:(Value.Int 0) ~required:true "k2" Value.TInt ] []
  in
  let v2 = Ops.hide db ~name:"NoK2" ~props:[ "k2" ] ~src:b2 in
  check_verdict "hide of defaulted attr" "translatable"
    (classify db v2 Lens.Create)

let test_union_w212 () =
  let db, reg = fresh_db () in
  let a = reg "A" [ stored "x" Value.TInt ] [] in
  let b = reg "B" [ stored "x" Value.TInt ] [] in
  ignore b;
  let u = Ops.union db ~name:"U" a (Schema_graph.find_by_name_exn
                                      (Database.graph db) "B").Klass.cid in
  check_verdict "create through union targets first operand"
    "conditional on in_class(A)" (classify db u Lens.Create);
  check_verdict "add through union" "conditional on in_class(A)"
    (classify db u Lens.Add);
  check_verdict "remove through union" "translatable"
    (classify db u Lens.Remove);
  (* runtime agreement with the Section 6.5.4 rule: the created object
     lands in the first operand *)
  let o = Generic.create db u ~init:[ ("x", Value.Int 1) ] in
  Alcotest.(check bool) "in first operand" true (Database.is_member db o a);
  Alcotest.(check bool) "in union" true (Database.is_member db o u);
  check_clean db "after union create"

let test_intersect_transitive () =
  let db, reg = fresh_db () in
  let b = reg "B" [ stored "a" Value.TInt; stored "c" Value.TInt ] [] in
  let s1 = Ops.select db ~name:"S1" ~src:b Expr.(attr "a" >= int 5) in
  let s2 = Ops.select db ~name:"S2" ~src:b Expr.(attr "c" < int 3) in
  let i = Ops.intersect db ~name:"I" s1 s2 in
  (* verdicts are transitive over the derivation chain: the intersect
     inherits both select conditions *)
  check_verdict "create through intersect of selects"
    "conditional on ((a >= 5) and (c < 3))" (classify db i Lens.Create);
  Alcotest.(check bool) "set a conditional" true
    (conditional (classify db i (Lens.Set "a")));
  Alcotest.(check bool) "set c conditional" true
    (conditional (classify db i (Lens.Set "c")));
  (* runtime agreement *)
  let o =
    Generic.create db i ~init:[ ("a", Value.Int 9); ("c", Value.Int 0) ]
  in
  Alcotest.(check bool) "in intersect" true (Database.is_member db o i);
  expect_generic_rejected "create violating one conjunct" (fun () ->
      Generic.create db i ~init:[ ("a", Value.Int 9); ("c", Value.Int 9) ]);
  check_clean db "after intersect updates"

let test_intersect_conflict_e121 () =
  let db, reg = fresh_db () in
  (* same attribute name, two distinct property identities *)
  let a = reg "A" [ stored "x" Value.TInt ] [] in
  let b = reg "B" [ stored "x" Value.TInt ] [] in
  let i = Ops.intersect db ~name:"I" a b in
  Alcotest.(check bool) "create rejected E121" true
    (rejected_with "E121" (classify db i Lens.Create));
  Alcotest.(check bool) "set of ambiguous name rejected E121" true
    (rejected_with "E121" (classify db i (Lens.Set "x")))

let test_difference_verdicts () =
  let db, reg = fresh_db () in
  let b0 = reg "B0" [ stored "a" Value.TInt ] [] in
  let b1 = reg "B1" [ stored "b" Value.TInt ] [] in
  let b2 = reg "B2" [ stored "c" Value.TInt ] [ b0 ] in
  let d = Ops.difference db ~name:"D" b0 b1 in
  check_verdict "create through difference" "conditional on not(in_class(B1))"
    (classify db d Lens.Create);
  check_verdict "remove through difference" "translatable"
    (classify db d Lens.Remove);
  (* subtrahend is an ancestor of the minuend: statically empty *)
  let e = Ops.difference db ~name:"E" b2 b0 in
  Alcotest.(check bool) "create rejected E122" true
    (rejected_with "E122" (classify db e Lens.Create));
  Alcotest.(check bool) "add rejected E122" true
    (rejected_with "E122" (classify db e Lens.Add));
  (* runtime agreement: a create through the empty difference is undone
     by get, so the Reject policy refuses it *)
  expect_generic_rejected "create through empty difference" (fun () ->
      Generic.create db e ~init:[ ("a", Value.Int 1); ("c", Value.Int 2) ]);
  check_clean db "after difference updates"

let test_membership_reads_methods () =
  let db, reg = fresh_db () in
  let b =
    reg "B"
      [
        stored "base_pay" Value.TInt;
        stored "bonus" Value.TInt;
        stored "other" Value.TInt;
        Prop.method_ ~origin:o0 "pay"
          Expr.(Arith (Add, attr "base_pay", attr "bonus"));
      ]
      []
  in
  let v = Ops.select db ~name:"WellPaid" ~src:b Expr.(attr "pay" >= int 100) in
  let g = Database.graph db in
  Alcotest.(check (list string))
    "membership reads expand the method body"
    [ "base_pay"; "bonus" ]
    (Lens.membership_reads g v);
  (* setting an attribute the predicate reads only through the derived
     method is still conditional *)
  Alcotest.(check bool) "set base_pay conditional (W211)" true
    (conditional (classify db v (Lens.Set "base_pay")));
  check_verdict "set unread attr" "translatable"
    (classify db v (Lens.Set "other"))

let test_entries_and_json () =
  let db, reg = fresh_db () in
  let b = reg "B" [ stored "a" Value.TInt; stored "s" Value.TString ] [] in
  let v = Ops.select db ~name:"V" ~src:b Expr.(attr "a" >= int 5) in
  let g = Database.graph db in
  let entries = Lens.class_entries g v in
  (* four membership updates plus the one interesting set *)
  Alcotest.(check int) "entry count" 5 (List.length entries);
  let find u =
    List.find (fun (e : Lens.entry) -> e.Lens.update = u) entries
  in
  let create = find Lens.Create in
  Alcotest.(check string) "operator" "select" create.Lens.operator;
  (match create.Lens.diag with
  | Some d ->
      Alcotest.(check string) "conditional diagnostic code" "W210"
        d.Tse_analysis.Diagnostic.code
  | None -> Alcotest.fail "conditional entry carries a diagnostic");
  let json = Lens.entry_to_json create in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "json has %s" needle)
        true
        (let nl = String.length needle and hl = String.length json in
         let rec go i =
           i + nl <= hl && (String.sub json i nl = needle || go (i + 1))
         in
         go 0))
    [ "\"class\":\"V\""; "\"update\":\"create\""; "\"verdict\":\"conditional\"";
      "\"condition\":\"(a >= 5)\"" ];
  (* the report embeds the entries, sorted by class then update *)
  let report = Tse_analysis.Analysis.analyze g in
  Alcotest.(check int) "report lens entries" 5
    (List.length report.Tse_analysis.Analysis.lens)

(* ---------------- deterministic GetPut/PutGet units ---------------- *)

let test_laws_select_roundtrip () =
  let u = University.build () in
  let adult =
    Ops.select u.db ~name:"Adult" ~src:u.person Expr.(attr "age" >= int 18)
  in
  let o = Generic.create u.db adult ~init:[ ("age", Value.Int 30) ] in
  (* PutGet: the view shows exactly the written state *)
  Alcotest.(check bool) "PutGet: member" true (Database.is_member u.db o adult);
  Alcotest.(check bool) "PutGet: value" true
    (Value.equal (Value.Int 30) (Database.get_prop u.db o "age"));
  (* GetPut: writing back the current value changes nothing *)
  let before = Database.member_classes u.db o in
  Generic.set ~through:adult u.db [ o ] [ ("age", Database.get_prop u.db o "age") ];
  Alcotest.(check bool) "GetPut: membership unchanged" true
    (List.for_all (fun c -> Database.is_member u.db o c) before
    && List.length before = List.length (Database.member_classes u.db o));
  (* an evicting write is rolled back whole (Conditional verdict, the
     condition fails on the post-state, so the put must not commit) *)
  expect_generic_rejected "evicting set" (fun () ->
      Generic.set ~through:adult u.db [ o ] [ ("age", Value.Int 10) ]);
  Alcotest.(check bool) "rollback restored the slot" true
    (Value.equal (Value.Int 30) (Database.get_prop u.db o "age"));
  check_clean u.db "after roundtrips"

(* ---------------- the qcheck soundness oracle ---------------- *)

(* Random schemas: three base classes and a random stack of derivation
   operators over them; random updates of every kind against every
   derived class, each checked against its static verdict. *)

let random_value rng = function
  | Value.TInt -> Value.Int (Random.State.int rng 20 - 5)
  | Value.TFloat -> Value.Float (float_of_int (Random.State.int rng 10))
  | Value.TString ->
      Value.String (Printf.sprintf "v%d" (Random.State.int rng 5))
  | Value.TBool -> Value.Bool (Random.State.bool rng)
  | _ -> Value.Null

let random_init rng g cid =
  List.filter_map
    (fun (p : Prop.t) ->
      match p.Prop.body with
      | Prop.Stored { ty; _ } -> Some (p.Prop.name, random_value rng ty)
      | Prop.Method _ -> None)
    (Type_info.stored_attrs g cid)

let random_pred rng g src =
  let ints =
    List.filter
      (fun (p : Prop.t) ->
        match p.Prop.body with
        | Prop.Stored { ty = Value.TInt; _ } -> true
        | _ -> false)
      (Type_info.stored_attrs g src)
  in
  match ints with
  | [] -> Expr.bool true
  | _ ->
      let pick () =
        let p = List.nth ints (Random.State.int rng (List.length ints)) in
        let k = Expr.int (Random.State.int rng 12 - 3) in
        if Random.State.bool rng then Expr.(attr p.Prop.name >= k)
        else Expr.(attr p.Prop.name < k)
      in
      let c = pick () in
      if Random.State.int rng 3 = 0 then Expr.(c && pick ()) else c

let build_random_schema rng =
  let db, reg = fresh_db () in
  let b0 =
    reg "B0" [ stored "a" Value.TInt; stored "s" Value.TString ] []
  in
  let b1 = reg "B1" [ stored "b" Value.TInt ] [] in
  let b2 = reg "B2" [ stored "c" Value.TInt ] [ b0 ] in
  let g = Database.graph db in
  let classes = ref [ b0; b1; b2 ] in
  let derived = ref [] in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let n_ops = 1 + Random.State.int rng 3 in
  for i = 0 to n_ops - 1 do
    let name = Printf.sprintf "D%d" i in
    match
      (match Random.State.int rng 8 with
      | 0 | 1 | 2 ->
          let src = pick !classes in
          Some (Ops.select db ~name ~src (random_pred rng g src))
      | 3 ->
          let src = pick !classes in
          let hideable =
            List.filter
              (fun (p : Prop.t) ->
                match p.Prop.body with
                | Prop.Stored { required; _ } -> not required
                | Prop.Method _ -> false)
              (Type_info.stored_attrs g src)
          in
          if hideable = [] then None
          else
            Some
              (Ops.hide db ~name
                 ~props:[ (pick hideable).Prop.name ]
                 ~src)
      | 4 ->
          let src = pick !classes in
          Some
            (Ops.refine db ~name
               ~props:
                 [
                   Prop.stored ~default:(Value.Int 0) ~origin:o0
                     (Printf.sprintf "r%d" i) Value.TInt;
                 ]
               ~src)
      | 5 -> Some (Ops.union db ~name (pick !classes) (pick !classes))
      | 6 -> Some (Ops.intersect db ~name (pick !classes) (pick !classes))
      | _ -> Some (Ops.difference db ~name (pick !classes) (pick !classes))
      [@warning "-57"])
    with
    | Some cid ->
        classes := cid :: !classes;
        derived := cid :: !derived
    | None -> ()
    | exception _ ->
        (* the algebra refused the operands (duplicate class, invalid
           predicate, ...): skip this operator *)
        ()
  done;
  (* population through the base classes *)
  for _ = 1 to 8 do
    let b = pick [ b0; b1; b2 ] in
    ignore (Generic.create db b ~init:(random_init rng g b))
  done;
  (db, List.rev !derived)

let fail_law fmt = Printf.ksprintf (fun m -> Alcotest.fail m) fmt

let assert_clean db what =
  match Database.check db with
  | [] -> ()
  | probs -> fail_law "%s: oracle found %s" what (String.concat "; " probs)

let cond_holds db o cond =
  match Expr.eval_bool (Database.env db o) cond with
  | b -> b
  | exception _ -> false

(* One update attempt, checked against its static verdict. [run] performs
   the put and returns the object to check the laws on; [laws] receives
   it on success. *)
let check_update db what verdict ~run ~laws =
  match run () with
  | o -> begin
      laws o;
      assert_clean db what;
      match verdict with
      | Lens.Translatable -> ()
      | Lens.Conditional cond ->
          if not (cond_holds db o cond) then
            fail_law
              "%s: accepted but the side-condition %s is false on the \
               post-state"
              what (Expr.to_string cond)
      | Lens.Rejected _ ->
          (* the runtime may still accept (e.g. a set of a hidden slot):
             no law obligation beyond consistency *)
          ()
    end
  | exception Generic.Rejected _ -> begin
      assert_clean db (what ^ " (rejected)");
      match verdict with
      | Lens.Translatable ->
          fail_law "%s: statically Translatable but rejected at runtime" what
      | Lens.Conditional _ | Lens.Rejected _ -> ()
    end

let exercise_class rng db t =
  let g = Database.graph db in
  let name = Schema_graph.name_of g t in
  (* create *)
  let init = random_init rng g t in
  check_update db
    (Printf.sprintf "create through %s" name)
    (classify db t Lens.Create)
    ~run:(fun () -> Generic.create db t ~init)
    ~laws:(fun o ->
      if not (Database.is_member db o t) then
        fail_law "create through %s: PutGet broken, object not in extent"
          name;
      List.iter
        (fun (n, v) ->
          if not (Value.equal v (Database.get_prop db o n)) then
            fail_law "create through %s: PutGet broken, %s does not read back"
              name n)
        init);
  (* add: an object of the first origin base *)
  (match Generic.origin_bases db t with
  | base :: _ ->
      let o =
        match Database.extent_list db base with
        | o :: _ -> o
        | [] -> Generic.create db base ~init:(random_init rng g base)
      in
      check_update db
        (Printf.sprintf "add to %s" name)
        (classify db t Lens.Add)
        ~run:(fun () ->
          Generic.add db [ o ] t;
          o)
        ~laws:(fun o ->
          if not (Database.is_member db o t) then
            fail_law "add to %s: PutGet broken, object not in extent" name)
  | [] -> ());
  (* set / GetPut / remove / delete against a member, when one exists *)
  match Database.extent_list db t with
  | [] -> ()
  | o :: _ -> begin
      (match Type_info.stored_attrs g t with
      | [] -> ()
      | attrs ->
          let p = List.nth attrs (Random.State.int rng (List.length attrs)) in
          let ty =
            match p.Prop.body with
            | Prop.Stored { ty; _ } -> ty
            | Prop.Method _ -> assert false
          in
          let attr = p.Prop.name in
          (* GetPut: writing the current value back is a no-op *)
          let current = Database.get_prop db o attr in
          let members_before = Database.member_classes db o in
          (match
             Generic.set ~through:t db [ o ] [ (attr, current) ]
           with
          | () ->
              if
                not
                  (List.length members_before
                   = List.length (Database.member_classes db o)
                  && List.for_all
                       (fun c -> Database.is_member db o c)
                       members_before)
              then
                fail_law "set %s.%s: GetPut broken, no-op write moved the \
                          object" name attr
          | exception Generic.Rejected _ ->
              fail_law "set %s.%s: GetPut broken, no-op write rejected" name
                attr);
          (* PutGet on a random value *)
          let v = random_value rng ty in
          let old = Database.get_prop db o attr in
          check_update db
            (Printf.sprintf "set %s.%s" name attr)
            (classify db t (Lens.Set attr))
            ~run:(fun () ->
              Generic.set ~through:t db [ o ] [ (attr, v) ];
              o)
            ~laws:(fun o ->
              if not (Value.equal v (Database.get_prop db o attr)) then
                fail_law "set %s.%s: PutGet broken, value does not read back"
                  name attr;
              if not (Database.is_member db o t) then
                fail_law "set %s.%s: accepted but evicted from the view"
                  name attr);
          (match Generic.set ~through:t db [ o ] [ (attr, old) ] with
          | () -> ()
          | exception Generic.Rejected _ -> ()));
      (* remove, then delete on whatever member remains *)
      check_update db
        (Printf.sprintf "remove from %s" name)
        (classify db t Lens.Remove)
        ~run:(fun () ->
          Generic.remove db [ o ] t;
          o)
        ~laws:(fun o ->
          if Database.is_member db o t then
            fail_law "remove from %s: PutGet broken, object still in extent"
              name);
      match Database.extent_list db t with
      | [] -> ()
      | o :: _ ->
          check_update db
            (Printf.sprintf "delete through %s" name)
            (classify db t Lens.Delete)
            ~run:(fun () ->
              Generic.delete db [ o ];
              o)
            ~laws:(fun o ->
              if Database.mem_object db o then
                fail_law "delete through %s: object survived" name)
    end

let prop_lens_soundness =
  QCheck.Test.make ~count:120 ~name:"lens verdicts sound vs Generic (laws)"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 77 |] in
      let db, derived = build_random_schema rng in
      assert_clean db "after schema build";
      List.iter (fun t -> exercise_class rng db t) derived;
      true)

let suite =
  [
    Alcotest.test_case "select: verdict table" `Quick test_select_verdicts;
    Alcotest.test_case "select false: E123" `Quick test_select_false_e123;
    Alcotest.test_case "hide: E120" `Quick test_hide_e120;
    Alcotest.test_case "union: W212 (Section 6.5.4)" `Quick test_union_w212;
    Alcotest.test_case "intersect: transitive conditions" `Quick
      test_intersect_transitive;
    Alcotest.test_case "intersect: E121 conflict" `Quick
      test_intersect_conflict_e121;
    Alcotest.test_case "difference: W213 and E122" `Quick
      test_difference_verdicts;
    Alcotest.test_case "membership reads expand methods" `Quick
      test_membership_reads_methods;
    Alcotest.test_case "entries and JSON shape" `Quick test_entries_and_json;
    Alcotest.test_case "GetPut/PutGet roundtrip units" `Quick
      test_laws_select_roundtrip;
    Qcheck_det.to_alcotest prop_lens_soundness;
  ]
