(* Crash-atomicity of schema evolution: the crash matrix over every
   evolve-phase failpoint and both WAL record boundaries of the
   evolution protocol, the torn-begin truncation sweep, roll-forward
   abort on undecodable/rejected intents, and a random-corruption
   property over an evolution-bearing log. All assertions are
   structural: the recovered database is fingerprinted and compared to a
   never-crashed in-memory twin, so it must be exactly the
   pre-evolution or the post-evolution state — never a hybrid. *)

open Tse_store
module Prop = Tse_schema.Prop
module Schema_graph = Tse_schema.Schema_graph
module Database = Tse_db.Database
module Durable = Tse_db.Durable
module Change = Tse_core.Change
module Change_codec = Tse_core.Change_codec
module Tsem = Tse_core.Tsem
module Durable_tse = Tse_core.Durable_tse
module Verify = Tse_core.Verify
module View_schema = Tse_views.View_schema

let check = Alcotest.check

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "tse_evorec_%d_%d" (Unix.getpid ()) !counter)
    in
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Unix.rmdir dir
    end;
    dir

let stored = Prop.stored ~origin:(Oid.of_int 0)

(* The build script, applied identically to the durable database and to
   the in-memory twins, so OID streams — and therefore structural
   fingerprints — align. *)
let build_fixture db =
  let reg name props supers =
    let cid =
      Schema_graph.register_base (Database.graph db) ~name ~props ~supers
    in
    Database.note_new_class db cid;
    cid
  in
  let person =
    reg "Person" [ stored "name" Value.TString; stored "age" Value.TInt ] []
  in
  let student = reg "Student" [ stored "gpa" Value.TInt ] [ person ] in
  ignore
    (Database.create_object db person
       ~init:[ ("name", Value.String "ann"); ("age", Value.Int 30) ]);
  ignore
    (Database.create_object db student
       ~init:[ ("name", Value.String "bob"); ("gpa", Value.Int 3); ("age", Value.Int 20) ])

let view = "V"
let view_classes = [ "Person"; "Student" ]

(* A twin that executed the same script in memory, optionally evolved. *)
let twin_fingerprint changes =
  let tsem = Tsem.create () in
  build_fixture (Tsem.db tsem);
  ignore (Tsem.define_view_by_names tsem ~name:view view_classes);
  List.iter (fun c -> ignore (Tsem.evolve tsem ~view c)) changes;
  Verify.db_fingerprint ~history:(Tsem.history tsem) (Tsem.db tsem)

let tse_fingerprint t =
  Verify.db_fingerprint ~history:(Durable_tse.history t) (Durable_tse.db t)

let setup ?policy () =
  let dir = fresh_dir () in
  let t, _ = Durable_tse.open_dir ?policy ~dir () in
  build_fixture (Durable_tse.db t);
  ignore (Durable_tse.define_view_by_names t ~name:view view_classes);
  Durable_tse.commit t;
  Durable_tse.sync t;
  (dir, t)

let changes1 =
  [
    Change.Add_attribute
      { cls = "Student"; def = Change.attr ~default:(Value.Int 0) "credits" Value.TInt };
  ]

let changes2 =
  [
    Change.Add_attribute
      { cls = "Person"; def = Change.attr ~default:(Value.Int 1) "rank" Value.TInt };
    Change.Add_class { cls = "Staff"; connected_to = Some "Person" };
  ]

(* ---------------- the crash matrix ---------------- *)

type expect = Pre | Post

(* Crashing before either protocol record is logged loses the evolution
   (Pre); crashing in any phase after the commit record is durable must
   roll it forward (Post). A torn begin record is also Pre: recovery
   truncates it away. *)
let evolve_crash_cases =
  [
    ("evolve.log.begin", Failpoint.Crash_now, Pre);
    ("wal.append.short", Failpoint.Short_write 11, Pre);
    ("evolve.log.commit", Failpoint.Crash_now, Pre);
    ("evolve.change", Failpoint.Crash_now, Post);
    ("evolve.derive", Failpoint.Crash_now, Post);
    ("evolve.classify", Failpoint.Crash_now, Post);
    ("evolve.integrate", Failpoint.Crash_now, Post);
    ("evolve.reclassify", Failpoint.Crash_now, Post);
  ]

let run_evolve_crash_case ?policy ~name ~action ~expect ~changes () =
  let dir, t = setup ?policy () in
  let pre_fp = twin_fingerprint [] in
  let post_fp = twin_fingerprint changes in
  check Alcotest.string
    (Printf.sprintf "%s: setup matches twin" name)
    pre_fp (tse_fingerprint t);
  let hits0 = Failpoint.hit_count name in
  let trips0 = Failpoint.trip_count name in
  Failpoint.arm name action;
  (match Durable_tse.evolve_many t ~view changes with
  | Ok _ | Error _ -> Alcotest.failf "%s: expected a crash" name
  | exception Failpoint.Crash _ -> ());
  check Alcotest.int
    (Printf.sprintf "%s: failpoint tripped exactly once" name)
    (trips0 + 1) (Failpoint.trip_count name);
  check Alcotest.bool
    (Printf.sprintf "%s: site was reached" name)
    true
    (Failpoint.hit_count name > hits0);
  Failpoint.reset ();
  (* the process "died": drop the handle without flushing, reopen *)
  Durable_tse.abandon t;
  let t2, report = Durable_tse.open_dir ?policy ~dir () in
  let recovered = tse_fingerprint t2 in
  (* the headline assertion: structurally exactly pre or post, and the
     version is the matching end of the chain — never in between *)
  check Alcotest.string
    (Printf.sprintf "%s: recovered state is exactly %s-evolution" name
       (match expect with Pre -> "pre" | Post -> "post"))
    (match expect with Pre -> pre_fp | Post -> post_fp)
    recovered;
  check Alcotest.int
    (Printf.sprintf "%s: view version" name)
    (match expect with Pre -> 0 | Post -> List.length changes)
    (Durable_tse.current t2 view).View_schema.version;
  (match expect with
  | Post ->
    check Alcotest.bool
      (Printf.sprintf "%s: recovery reports a roll-forward" name)
      true
      (report.Durable_tse.rolled_forward <> [])
  | Pre -> ());
  (match Database.check (Durable_tse.db t2) with
  | [] -> ()
  | ps -> Alcotest.failf "%s: inconsistent: %s" name (String.concat "; " ps));
  (* the recovered store must still evolve: run the same changes (Pre)
     or a follow-up change (Post) and land on the twin's state *)
  let next =
    match expect with
    | Pre -> changes
    | Post ->
      [
        Change.Add_attribute
          { cls = "Student"; def = Change.attr ~default:(Value.Int 9) "zz" Value.TInt };
      ]
  in
  (match Durable_tse.evolve_many t2 ~view next with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "%s: evolve after recovery failed: %s" name msg);
  let expected_final =
    twin_fingerprint (match expect with Pre -> changes | Post -> changes @ next)
  in
  check Alcotest.string
    (Printf.sprintf "%s: writable after recovery" name)
    expected_final (tse_fingerprint t2);
  Durable_tse.close t2;
  (* and the post-recovery work is itself durable *)
  let t3, _ = Durable_tse.open_dir ?policy ~dir () in
  check Alcotest.string
    (Printf.sprintf "%s: durable after recovery" name)
    expected_final (tse_fingerprint t3);
  Durable_tse.close t3

let test_crash_matrix () =
  List.iter
    (fun (name, action, expect) ->
      run_evolve_crash_case ~name ~action ~expect ~changes:changes1 ())
    evolve_crash_cases

(* Under a grouped sync policy the effects batch may be lost even
   without a failpoint on it; the commit record is fsynced, so recovery
   still rolls forward. *)
let test_crash_matrix_group_policy () =
  List.iter
    (fun (name, action, expect) ->
      run_evolve_crash_case ~policy:(Durable.Group 4) ~name ~action ~expect
        ~changes:changes1 ())
    evolve_crash_cases

(* A two-change unit must recover to version 0 or version 2 — never the
   version-1 prefix — whichever side of the protocol the crash lands. *)
let test_multi_change_atomicity () =
  List.iter
    (fun (name, action, expect) ->
      run_evolve_crash_case ~name ~action ~expect ~changes:changes2 ())
    [
      ("evolve.log.commit", Failpoint.Crash_now, Pre);
      ("evolve.change", Failpoint.Crash_now, Post);
      ("evolve.reclassify", Failpoint.Crash_now, Post);
    ]

(* ---------------- torn begin record: every truncation offset -------- *)

let copy_dir_truncated src dst cut =
  Unix.mkdir dst 0o755;
  Array.iter
    (fun f ->
      let data = Storage.read_file (Filename.concat src f) in
      let data =
        if String.equal f "wal" then String.sub data 0 cut else data
      in
      let oc = open_out_bin (Filename.concat dst f) in
      output_string oc data;
      close_out oc)
    (Sys.readdir src)

(* Kill the evolution after the begin record is durable but before the
   commit record; then re-cut the log at EVERY byte boundary inside the
   begin record. Whatever the cut, recovery must land on the
   pre-evolution twin state: a torn or dangling begin is discarded. *)
let test_torn_begin_every_offset () =
  let dir, t = setup () in
  let wal_path = Filename.concat dir "wal" in
  let len0 = (Unix.stat wal_path).Unix.st_size in
  Failpoint.arm "evolve.log.commit" Failpoint.Crash_now;
  (match Durable_tse.evolve_many t ~view changes1 with
  | Ok _ | Error _ -> Alcotest.fail "expected a crash"
  | exception Failpoint.Crash _ -> ());
  Failpoint.reset ();
  Durable_tse.abandon t;
  let len1 = (Unix.stat wal_path).Unix.st_size in
  check Alcotest.bool "begin record appended" true (len1 > len0);
  let pre_fp = twin_fingerprint [] in
  for cut = len0 to len1 do
    let cdir = fresh_dir () in
    copy_dir_truncated dir cdir cut;
    let t2, report = Durable_tse.open_dir ~dir:cdir () in
    check Alcotest.string
      (Printf.sprintf "cut at %d/%d: pre-evolution state" (cut - len0)
         (len1 - len0))
      pre_fp (tse_fingerprint t2);
    check Alcotest.int
      (Printf.sprintf "cut at %d: version 0" (cut - len0))
      0
      (Durable_tse.current t2 view).View_schema.version;
    check Alcotest.(list (pair int string))
      (Printf.sprintf "cut at %d: nothing rolled forward" (cut - len0))
      []
      report.Durable_tse.rolled_forward;
    (match Database.check (Durable_tse.db t2) with
    | [] -> ()
    | ps -> Alcotest.failf "cut at %d: inconsistent: %s" cut (String.concat "; " ps));
    Durable_tse.close t2
  done

(* ---------------- roll-forward abort ---------------- *)

(* Splice a committed evolution whose payload is garbage into the log.
   Recovery must durably neutralize it (Evo_done ok=false), keep the
   pre-evolution state, and not see it again at the next open. *)
let append_committed_intent dir ~payload =
  let d, _ = Durable.open_dir ~dir () in
  let seq = Durable.seq d in
  Durable.close d;
  let eid = seq + 1 in
  let oc =
    open_out_gen [ Open_append; Open_binary ] 0o644 (Filename.concat dir "wal")
  in
  output_string oc
    (Wal.encode_record ~seq:eid [ Wal.Evo_begin { eid; view; payload } ]);
  output_string oc
    (Wal.encode_record ~seq:(eid + 1) [ Wal.Evo_commit { eid; view } ]);
  close_out oc;
  eid

let test_rollforward_abort_garbage_payload () =
  let dir, t = setup () in
  Durable_tse.close t;
  let eid = append_committed_intent dir ~payload:"\x01garbage\xff" in
  let pre_fp = twin_fingerprint [] in
  let t2, report = Durable_tse.open_dir ~dir () in
  check Alcotest.(list int) "aborted exactly the spliced eid" [ eid ]
    report.Durable_tse.aborted;
  check Alcotest.string "pre-evolution state" pre_fp (tse_fingerprint t2);
  Durable_tse.close t2;
  (* the abort is durable: a second open sees nothing pending *)
  let t3, report3 = Durable_tse.open_dir ~dir () in
  check Alcotest.(list int) "abort is durable" [] report3.Durable_tse.aborted;
  check
    Alcotest.(list (pair int string))
    "nothing pending" [] report3.Durable_tse.rolled_forward;
  check Alcotest.string "state unchanged" pre_fp (tse_fingerprint t3);
  Durable_tse.close t3

(* Same, but the payload decodes fine and is deterministically rejected
   by the evolution's own preconditions. *)
let test_rollforward_abort_rejected_change () =
  let dir, t = setup () in
  Durable_tse.close t;
  let payload =
    Change_codec.encode
      [ Change.Delete_attribute { cls = "Student"; attr_name = "nope" } ]
  in
  let eid = append_committed_intent dir ~payload in
  let pre_fp = twin_fingerprint [] in
  let t2, report = Durable_tse.open_dir ~dir () in
  check Alcotest.(list int) "rejected intent aborted" [ eid ]
    report.Durable_tse.aborted;
  check Alcotest.string "pre-evolution state" pre_fp (tse_fingerprint t2);
  Durable_tse.close t2

(* A live rejection must also leave the reopened pre-evolution state and
   a working handle (the whole list is all-or-nothing). *)
let test_live_rejection_is_all_or_nothing () =
  let _dir, t = setup () in
  let pre_fp = twin_fingerprint [] in
  (match
     Durable_tse.evolve_many t ~view
       [
         Change.Add_attribute
           { cls = "Person"; def = Change.attr ~default:(Value.Int 0) "ok1" Value.TInt };
         Change.Delete_attribute { cls = "Student"; attr_name = "nope" };
       ]
   with
  | Ok _ -> Alcotest.fail "expected a rejection"
  | Error _ -> ());
  check Alcotest.string "rejected list fully rolled back" pre_fp
    (tse_fingerprint t);
  check Alcotest.int "version 0" 0 (Durable_tse.current t view).View_schema.version;
  (match Durable_tse.evolve_many t ~view changes1 with
  | Ok v -> check Alcotest.int "handle still evolves" 1 v.View_schema.version
  | Error msg -> Alcotest.failf "evolve after rejection failed: %s" msg);
  Durable_tse.close t

(* ---------------- random corruption property ---------------- *)

(* Any single corrupted byte in an evolution-bearing log must leave the
   store openable, consistent, and at one of the states the history went
   through: pre-evolution, post-evolution (roll-forward replays a
   committed intent whose effects batch was lost), or post-traffic. *)
let prop_evolution_wal_corruption =
  let dir, t = setup () in
  Durable_tse.checkpoint t;
  let s0 = twin_fingerprint [] in
  (match Durable_tse.evolve_many t ~view changes1 with
  | Ok _ -> ()
  | Error msg -> failwith msg);
  let s1 = tse_fingerprint t in
  let db = Durable_tse.db t in
  let o = List.hd (List.sort Oid.compare (Database.objects db)) in
  Database.set_attr db o "age" (Value.Int 77);
  Durable_tse.commit t;
  Durable_tse.sync t;
  let s2 = tse_fingerprint t in
  Durable_tse.close t;
  let wal = Storage.read_file (Filename.concat dir "wal") in
  let snapshot = Storage.read_file (Filename.concat dir "snapshot") in
  let states = [ s0; s1; s2 ] in
  QCheck.Test.make
    ~name:"single-byte corruption of an evolution log never breaks recovery"
    ~count:120
    QCheck.(pair (int_bound (String.length wal - 1)) (int_bound 255))
    (fun (off, byte) ->
      let corrupted = Bytes.of_string wal in
      Bytes.set corrupted off (Char.chr byte);
      let cdir = fresh_dir () in
      Unix.mkdir cdir 0o755;
      let oc = open_out_bin (Filename.concat cdir "wal") in
      output_bytes oc corrupted;
      close_out oc;
      let oc = open_out_bin (Filename.concat cdir "snapshot") in
      output_string oc snapshot;
      close_out oc;
      let t, _ = Durable_tse.open_dir ~dir:cdir () in
      let fp = tse_fingerprint t in
      let ok =
        Database.check (Durable_tse.db t) = [] && List.mem fp states
      in
      Durable_tse.close t;
      ok)

let suite =
  [
    Alcotest.test_case "evolution crash matrix (every phase + boundaries)"
      `Quick test_crash_matrix;
    Alcotest.test_case "evolution crash matrix under group commit" `Quick
      test_crash_matrix_group_policy;
    Alcotest.test_case "multi-change unit is all-or-nothing under crashes"
      `Quick test_multi_change_atomicity;
    Alcotest.test_case "torn begin record: every truncation offset" `Quick
      test_torn_begin_every_offset;
    Alcotest.test_case "roll-forward abort: garbage payload" `Quick
      test_rollforward_abort_garbage_payload;
    Alcotest.test_case "roll-forward abort: rejected change" `Quick
      test_rollforward_abort_rejected_change;
    Alcotest.test_case "live rejection is all-or-nothing" `Quick
      test_live_rejection_is_all_or_nothing;
  ]
  @ [ Qcheck_det.to_alcotest prop_evolution_wal_corruption ]
