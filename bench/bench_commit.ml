(* Commit-throughput benchmark: the group-commit pipeline against the
   eager fsync-per-commit default. Each policy runs the same write-heavy
   trace (one attribute write per commit) on a fresh durable directory;
   commits/sec and fsyncs/commit come from wall time and the WAL's
   amortization counters. Emits machine-readable BENCH_commit.json
   alongside the printed table so CI and the driver can assert the
   speedup. *)

open Tse_store
open Tse_schema
open Tse_db
module Metrics = Tse_obs.Metrics

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "tse_bench_commit_%d_%d" (Unix.getpid ()) !counter)
    in
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Unix.rmdir dir
    end;
    dir

(* One base class, [objects] members, checkpointed so the measured trace
   starts from an empty log. *)
let mk_fixture ~policy ~objects =
  let dir = fresh_dir () in
  let d, _ = Durable.open_dir ~policy ~dir () in
  let db = Durable.db d in
  let item =
    Schema_graph.register_base (Database.graph db) ~name:"Item"
      ~props:[ Prop.stored ~origin:(Oid.of_int 0) "n" Value.TInt ]
      ~supers:[]
  in
  Database.note_new_class db item;
  let objs =
    Array.init objects (fun i ->
        Database.create_object db item ~init:[ ("n", Value.Int i) ])
  in
  Durable.checkpoint d;
  (dir, d, db, objs)

type row = {
  label : string;
  seconds : float;
  commits_per_sec : float;
  fsyncs : int;
  fsyncs_per_commit : float;
  bytes_framed : int;
  max_batches_per_sync : int;
}

(* Best of three fresh fixtures; each run ends with an explicit barrier
   so every policy pays for full durability of the whole trace, and is
   verified by reopening the directory. *)
let measure ~policy ~label ~objects ~commits =
  let once () =
    let dir, d, db, objs = mk_fixture ~policy ~objects in
    let f0 = (Durable.wal_stats d).Wal.fsyncs in
    let b0 = (Durable.wal_stats d).Wal.bytes_framed in
    let t0 = Unix.gettimeofday () in
    for i = 0 to commits - 1 do
      Database.set_attr db objs.(i mod Array.length objs) "n" (Value.Int i);
      Durable.commit d
    done;
    Durable.sync d;
    let dt = Unix.gettimeofday () -. t0 in
    let s = Durable.wal_stats d in
    let fsyncs = s.Wal.fsyncs - f0 in
    let bytes = s.Wal.bytes_framed - b0 in
    let max_group = s.Wal.max_batches_per_sync in
    Durable.close d;
    (* everything the trace wrote must actually be on disk *)
    let d2, _ = Durable.open_dir ~policy ~dir () in
    (match Database.check (Durable.db d2) with
    | [] -> ()
    | p -> failwith ("bench fixture inconsistent: " ^ String.concat "; " p));
    let last = Value.Int (commits - 1) in
    let survivor = objs.((commits - 1) mod Array.length objs) in
    if not (Value.equal (Database.get_prop (Durable.db d2) survivor "n") last)
    then failwith "bench: last committed write did not survive reopen";
    Durable.close d2;
    {
      label;
      seconds = dt;
      commits_per_sec = float_of_int commits /. dt;
      fsyncs;
      fsyncs_per_commit = float_of_int fsyncs /. float_of_int commits;
      bytes_framed = bytes;
      max_batches_per_sync = max_group;
    }
  in
  let best = ref (once ()) in
  for _ = 2 to 3 do
    let r = once () in
    if r.commits_per_sec > !best.commits_per_sec then best := r
  done;
  !best

let json_of rows ~smoke ~objects ~commits ~base =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"benchmark\": \"commit\",\n";
  Printf.bprintf b "  \"smoke\": %b,\n" smoke;
  Printf.bprintf b "  \"objects\": %d,\n" objects;
  Printf.bprintf b "  \"commits\": %d,\n" commits;
  Printf.bprintf b "  \"domains\": %d,\n"
    (Tse_pool.Pool.size (Tse_pool.Pool.global ()));
  Printf.bprintf b "  \"host_cores\": %d,\n" (Domain.recommended_domain_count ());
  (* registry totals for the whole run (all policies, best-of-3 each),
     plus the headline ratio CI tooling reads without summing rows *)
  let g8 = List.find_opt (fun r -> r.label = "group:8") rows in
  Printf.bprintf b "  \"metrics\": {\n";
  (match g8 with
  | Some r ->
    Printf.bprintf b "    \"fsyncs_per_commit_group8\": %.4f,\n"
      r.fsyncs_per_commit
  | None -> ());
  Printf.bprintf b "    \"wal_fsyncs_total\": %d,\n"
    (Metrics.find_counter "wal.fsyncs");
  Printf.bprintf b "    \"wal_bytes_framed_total\": %d,\n"
    (Metrics.find_counter "wal.bytes_framed");
  Printf.bprintf b "    \"durable_commits_total\": %d,\n"
    (Metrics.find_counter "durable.commits");
  Printf.bprintf b "    \"registry\": %s\n"
    (Metrics.to_json (Metrics.nonzero (Metrics.snapshot ())));
  Printf.bprintf b "  },\n";
  Buffer.add_string b "  \"policies\": [\n";
  List.iteri
    (fun i r ->
      Printf.bprintf b
        "    {\"policy\": \"%s\", \"seconds\": %.4f, \
         \"commits_per_sec\": %.1f, \"speedup_vs_every_commit\": %.2f, \
         \"fsyncs\": %d, \"fsyncs_per_commit\": %.4f, \
         \"bytes_framed\": %d, \"max_batches_per_sync\": %d}%s\n"
        r.label r.seconds r.commits_per_sec
        (r.commits_per_sec /. base.commits_per_sec)
        r.fsyncs r.fsyncs_per_commit r.bytes_framed r.max_batches_per_sync
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let run ~smoke () =
  (* scope the registry to this run so the metrics section is readable *)
  Metrics.reset ();
  let objects = 64 in
  let commits = if smoke then 200 else 2000 in
  Printf.printf
    "commit throughput: %d commits (one attr write each), %d objects, \
     barrier at end of every run\n%!"
    commits objects;
  let policies =
    [
      ("every_commit", Durable.Every_commit);
      ("group:2", Durable.Group 2);
      ("group:8", Durable.Group 8);
      ("group:32", Durable.Group 32);
      ("manual", Durable.Manual);
    ]
  in
  let rows =
    List.map
      (fun (label, policy) -> measure ~policy ~label ~objects ~commits)
      policies
  in
  let base = List.hd rows in
  List.iter
    (fun r ->
      Printf.printf
        "  %-12s %10.0f commits/s   %7.4f fsyncs/commit   speedup %6.2fx   \
         max group %4d   %7d bytes framed\n"
        r.label r.commits_per_sec r.fsyncs_per_commit
        (r.commits_per_sec /. base.commits_per_sec)
        r.max_batches_per_sync r.bytes_framed)
    rows;
  let json = json_of rows ~smoke ~objects ~commits ~base in
  let oc = open_out "BENCH_commit.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_commit.json\n";
  (* the headline claim, enforced where the numbers are produced *)
  let g8 = List.find (fun r -> r.label = "group:8") rows in
  if g8.fsyncs_per_commit > 0.2 then begin
    Printf.printf "FAIL: group:8 used %.4f fsyncs/commit (> 0.2)\n"
      g8.fsyncs_per_commit;
    exit 1
  end;
  if (not smoke) && g8.commits_per_sec /. base.commits_per_sec < 5.0 then begin
    Printf.printf "FAIL: group:8 speedup below 5x over every_commit\n";
    exit 1
  end
