(* Write-heavy reclassification benchmark: the incremental
   dependency-driven engine against the full-fixpoint oracle
   (DB_FULL_RECLASSIFY semantics), at 1 / 10 / 100 virtual classes.
   Emits machine-readable BENCH_reclassify.json alongside the printed
   table so CI and the driver can assert the speedup. *)

open Tse_store
open Tse_schema
open Tse_db
module Metrics = Tse_obs.Metrics
module Pool = Tse_pool.Pool

let attr_slots = 10

(* One base class with [attr_slots] predicate-visible int attributes and
   one attribute no predicate reads, [n] select classes spread over the
   visible attributes, [objects] members with deterministic values. *)
let mk_fixture ~full ~objects n =
  let db = Database.create () in
  Database.set_full_reclassify db full;
  let g = Database.graph db in
  let props =
    Prop.stored ~origin:(Oid.of_int 0) "quiet" Value.TInt
    :: List.init attr_slots (fun i ->
           Prop.stored ~origin:(Oid.of_int 0)
             (Printf.sprintf "f%d" i)
             Value.TInt)
  in
  let item = Schema_graph.register_base g ~name:"Item" ~props ~supers:[] in
  Database.note_new_class db item;
  for i = 0 to n - 1 do
    ignore
      (Tse_algebra.Ops.select db
         ~name:(Printf.sprintf "V%d" i)
         ~src:item
         Expr.(attr (Printf.sprintf "f%d" (i mod attr_slots)) >= int (i * 7 mod 100)))
  done;
  let objs =
    Array.init objects (fun j ->
        let init =
          ("quiet", Value.Int 0)
          :: List.init attr_slots (fun i ->
                 (Printf.sprintf "f%d" i, Value.Int ((j + (i * 37)) mod 100)))
        in
        Database.create_object db item ~init)
  in
  (db, objs)

(* The measured trace: round-robin objects, cycling attributes, values
   sweeping 0..99 so select thresholds are crossed regularly. *)
let run_writes db objs ~writes ~attr_of =
  for s = 0 to writes - 1 do
    let o = objs.(s mod Array.length objs) in
    Database.set_attr db o (attr_of s) (Value.Int (s * 13 mod 100))
  done

let time_ns_per_op f ~ops =
  let best = ref infinity in
  for _ = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best *. 1e9 /. float_of_int ops

type group = {
  virtuals : int;
  incr_ns : float;
  oracle_ns : float;
  incr_evals : int;
  oracle_evals : int;
  quiet_ns : float;
  quiet_evals : int;
}

(* Per-write latency distribution on the incremental side: a separate
   instrumented pass (clock reads around every write would distort the
   timed best-of runs above), folded into a quantile snapshot. *)
let write_latency_quantiles ~objects ~writes n =
  let hot s = Printf.sprintf "f%d" (s mod attr_slots) in
  let db, objs = mk_fixture ~full:false ~objects n in
  let obs = ref [] in
  for s = 0 to writes - 1 do
    let o = objs.(s mod Array.length objs) in
    let t0 = Unix.gettimeofday () in
    Database.set_attr db o (hot s) (Value.Int (s * 13 mod 100));
    obs := ((Unix.gettimeofday () -. t0) *. 1e6) :: !obs
  done;
  Metrics.Histogram.of_observations
    ~buckets:[ 0.5; 1.; 2.; 5.; 10.; 25.; 50.; 100.; 250.; 1000.; 10000. ]
    (List.rev !obs)

let quantiles_json (h : Metrics.hist_snapshot) =
  Printf.sprintf
    "{\"count\": %d, \"p50_us\": %.2f, \"p95_us\": %.2f, \"p99_us\": %.2f}"
    h.Metrics.h_count h.Metrics.h_p50 h.Metrics.h_p95 h.Metrics.h_p99

let measure_group ~objects ~writes n =
  let hot s = Printf.sprintf "f%d" (s mod attr_slots) in
  let side full attr_of =
    let db, objs = mk_fixture ~full ~objects n in
    let e0 = Database.formula_eval_count db in
    let ns =
      time_ns_per_op (fun () -> run_writes db objs ~writes ~attr_of) ~ops:writes
    in
    let evals = Database.formula_eval_count db - e0 in
    (match Database.check db with
    | [] -> ()
    | p -> failwith ("bench fixture inconsistent: " ^ String.concat "; " p));
    (ns, evals)
  in
  let incr_ns, incr_evals = side false hot in
  let oracle_ns, oracle_evals = side true hot in
  let quiet_ns, quiet_evals = side false (fun _ -> "quiet") in
  { virtuals = n; incr_ns; oracle_ns; incr_evals; oracle_evals;
    quiet_ns; quiet_evals }

(* Parallel bulk-reclassification scaling: [Database.reclassify_all]
   over a larger population at 1/2/4/8 domains.  reclassify_all bumps
   the cache generation before walking the extent, so every trial —
   sequential or parallel — starts with cold verdict memos; the
   comparison is honest.  Each domain count's resulting database is
   checked fingerprint-identical to the 1-domain run before its timing
   is trusted. *)
let bulk_scaling ~smoke =
  let objects = if smoke then 3_000 else 20_000 in
  let db, _objs = mk_fixture ~full:false ~objects 20 in
  let time_best f =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best *. 1e9
  in
  let baseline_fp = ref "" in
  let rows =
    List.map
      (fun d ->
        Pool.set_global_size d;
        let ns = time_best (fun () -> Database.reclassify_all db) in
        let fp = Tse_core.Verify.db_fingerprint db in
        if d = 1 then baseline_fp := fp
        else if not (String.equal fp !baseline_fp) then begin
          Printf.printf
            "FAIL: parallel reclassify_all at %d domains diverged from the \
             sequential result\n"
            d;
          exit 1
        end;
        (d, ns))
      [ 1; 2; 4; 8 ]
  in
  Pool.set_global_size (Pool.default_domains ());
  let ns1 = List.assoc 1 rows in
  (objects, List.map (fun (d, ns) -> (d, ns, ns1 /. ns)) rows)

(* Exercise the query engine on the bench fixture so the registry's
   query.* counters are populated: one indexed equality lookup and one
   full extent scan over the same class. *)
let query_phase ~objects =
  let db, _objs = mk_fixture ~full:false ~objects 10 in
  let g = Database.graph db in
  let item = (Schema_graph.find_by_name_exn g "Item").Klass.cid in
  let indexes = Tse_query.Indexes.create db in
  Tse_query.Indexes.ensure indexes item "f0";
  let indexed, _ =
    Tse_query.Engine.select_explain db indexes item
      Expr.(attr "f0" === int ((0 + (0 * 37)) mod 100))
  in
  let scanned, _ =
    Tse_query.Engine.select_explain db indexes item
      Expr.(attr "f1" >= int 50)
  in
  (indexed, scanned)

let json_of groups ~smoke ~objects ~writes ~indexed ~scanned ~bulk_objects
    ~scaling ~latency =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"benchmark\": \"reclassify\",\n";
  Printf.bprintf b "  \"smoke\": %b,\n" smoke;
  Printf.bprintf b "  \"objects\": %d,\n" objects;
  Printf.bprintf b "  \"writes\": %d,\n" writes;
  Printf.bprintf b "  \"write_latency_us\": {%s},\n"
    (String.concat ", "
       (List.map
          (fun (n, h) ->
            Printf.sprintf "\"virtuals_%d\": %s" n (quantiles_json h))
          latency));
  Printf.bprintf b "  \"domains\": %d,\n" (Pool.size (Pool.global ()));
  Printf.bprintf b "  \"host_cores\": %d,\n" (Domain.recommended_domain_count ());
  Printf.bprintf b "  \"bulk_objects\": %d,\n" bulk_objects;
  Printf.bprintf b "  \"parallel_scaling\": [\n";
  List.iteri
    (fun i (d, ns, sp) ->
      Printf.bprintf b
        "    {\"domains\": %d, \"reclassify_all_ns\": %.0f, \"speedup\": \
         %.2f}%s\n"
        d ns sp
        (if i = List.length scaling - 1 then "" else ","))
    scaling;
  Printf.bprintf b "  ],\n";
  (* registry totals across every side of every group, plus the derived
     ratios CI tooling reads without recomputing *)
  let memo_hits = Metrics.find_counter "reclass.verdict_memo_hits" in
  let evals = Metrics.find_counter "reclass.formula_evals" in
  let verdicts = memo_hits + evals in
  Printf.bprintf b "  \"metrics\": {\n";
  Printf.bprintf b "    \"verdict_memo_hit_rate\": %.4f,\n"
    (if verdicts = 0 then 0.0
     else float_of_int memo_hits /. float_of_int verdicts);
  Printf.bprintf b "    \"objects_visited_total\": %d,\n"
    (Metrics.find_counter "reclass.objects_visited");
  Printf.bprintf b "    \"compiled_evals_total\": %d,\n"
    (Metrics.find_counter "reclass.compiled_evals");
  Printf.bprintf b "    \"pred_compiles_total\": %d,\n"
    (Metrics.find_counter "reclass.pred_compiles");
  Printf.bprintf b "    \"untouched_attr_skips_total\": %d,\n"
    (Metrics.find_counter "reclass.untouched_attr_skips");
  Printf.bprintf b
    "    \"query\": {\"indexed_rows_scanned\": %d, \
     \"indexed_rows_returned\": %d, \"scan_rows_scanned\": %d, \
     \"scan_rows_returned\": %d},\n"
    indexed.Tse_query.Engine.rows_scanned
    indexed.Tse_query.Engine.rows_returned
    scanned.Tse_query.Engine.rows_scanned
    scanned.Tse_query.Engine.rows_returned;
  Printf.bprintf b "    \"registry\": %s\n"
    (Metrics.to_json (Metrics.nonzero (Metrics.snapshot ())));
  Printf.bprintf b "  },\n";
  Buffer.add_string b "  \"groups\": [\n";
  List.iteri
    (fun i g ->
      Printf.bprintf b
        "    {\"virtual_classes\": %d, \"incremental_ns_per_op\": %.1f, \
         \"oracle_ns_per_op\": %.1f, \"speedup\": %.2f, \
         \"incremental_evals\": %d, \"oracle_evals\": %d, \
         \"quiet_attr_ns_per_op\": %.1f, \"quiet_attr_evals\": %d}%s\n"
        g.virtuals g.incr_ns g.oracle_ns (g.oracle_ns /. g.incr_ns)
        g.incr_evals g.oracle_evals g.quiet_ns g.quiet_evals
        (if i = List.length groups - 1 then "" else ","))
    groups;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let run ~smoke () =
  (* scope the registry to this run so the metrics section is readable *)
  Metrics.reset ();
  (* BENCH_RECLASS_OBJECTS scales the population without a rebuild *)
  let objects =
    match Sys.getenv_opt "BENCH_RECLASS_OBJECTS" with
    | Some s -> int_of_string s
    | None -> if smoke then 40 else 300
  in
  let writes = if smoke then 400 else 4000 in
  Printf.printf
    "reclassification: write-heavy, %d objects, %d writes per side\n%!"
    objects writes;
  let groups = List.map (measure_group ~objects ~writes) [ 1; 10; 100 ] in
  List.iter
    (fun g ->
      Printf.printf
        "  virtuals=%3d  incremental %10.1f ns/op (%6d evals)   oracle \
         %10.1f ns/op (%7d evals)   speedup %6.2fx   quiet-attr %8.1f \
         ns/op (%d evals)\n"
        g.virtuals g.incr_ns g.incr_evals g.oracle_ns g.oracle_evals
        (g.oracle_ns /. g.incr_ns) g.quiet_ns g.quiet_evals)
    groups;
  let latency =
    List.map
      (fun n -> (n, write_latency_quantiles ~objects ~writes n))
      [ 1; 10; 100 ]
  in
  List.iter
    (fun (n, h) ->
      Printf.printf
        "  virtuals=%3d  per-write latency: p50 %8.2fus  p95 %8.2fus  p99 \
         %8.2fus\n"
        n h.Metrics.h_p50 h.Metrics.h_p95 h.Metrics.h_p99)
    latency;
  let bulk_objects, scaling = bulk_scaling ~smoke in
  let host_cores = Domain.recommended_domain_count () in
  Printf.printf
    "  bulk reclassify_all scaling, %d objects (host has %d cores):\n"
    bulk_objects host_cores;
  List.iter
    (fun (d, ns, sp) ->
      Printf.printf "    %d domain%s : %10.0f ns  (%5.2fx)\n" d
        (if d = 1 then " " else "s")
        ns sp)
    scaling;
  let indexed, scanned = query_phase ~objects in
  let json =
    json_of groups ~smoke ~objects ~writes ~indexed ~scanned ~bulk_objects
      ~scaling ~latency
  in
  let oc = open_out "BENCH_reclassify.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_reclassify.json\n";
  (* the headline claim, enforced where the numbers are produced *)
  let g100 = List.find (fun g -> g.virtuals = 100) groups in
  if g100.quiet_evals <> 0 then begin
    Printf.printf "FAIL: quiet-attribute writes evaluated %d formulas\n"
      g100.quiet_evals;
    exit 1
  end;
  if (not smoke) && g100.oracle_ns /. g100.incr_ns < 5.0 then begin
    Printf.printf "FAIL: speedup below 5x at 100 virtual classes\n";
    exit 1
  end;
  (* Multicore floor: only meaningful where the host can actually run 4
     domains in parallel; smaller machines still record honest numbers
     (with host_cores) and the floor is waived. *)
  let _, _, sp4 = List.find (fun (d, _, _) -> d = 4) scaling in
  if (not smoke) && host_cores >= 4 && sp4 < 1.0 then begin
    Printf.printf
      "FAIL: parallel reclassify_all below 1x at 4 domains on a %d-core host\n"
      host_cores;
    exit 1
  end
