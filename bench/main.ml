(* The benchmark harness: regenerates the measured counterpart of every
   table and figure of the paper's evaluation, plus the ablations listed
   in DESIGN.md. Absolute numbers are machine-dependent; the SHAPE (who
   wins, by what factor, where crossovers fall) is what reproduces the
   paper's claims. *)

open Bechamel
open Toolkit
open Tse_store
open Tse_schema
open Tse_db
open Tse_core
open Tse_workload
open Tse_baselines

let hdr title =
  Printf.printf "\n=== %s %s\n" title
    (String.make (max 1 (66 - String.length title)) '=')

let now () = Sys.time ()

(* Run one bechamel test group and print (name, ns/run, r²) rows. *)
let measure ?(quota = 0.25) test =
  (* stabilize:false — GC stabilization loops pathologically on
     allocation-heavy fixtures and is unnecessary for relative
     comparisons *)
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second quota) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> e
        | Some [] | None -> nan
      in
      let r2 = Option.value (Analyze.OLS.r_square ols) ~default:nan in
      (name, est, r2) :: acc)
    results []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let print_rows rows =
  List.iter
    (fun (name, ns, r2) ->
      Printf.printf "  %-46s %12.1f ns/op   (r²=%.3f)\n" name ns r2)
    rows

let bench ?quota name tests =
  print_rows (measure ?quota (Test.make_grouped ~name tests))

let staged f = Staged.stage f

(* ------------------------------------------------------------------ *)
(* TABLE 1 — object-slicing vs intersection-class                      *)
(* ------------------------------------------------------------------ *)

let table1_structural () =
  hdr "TABLE 1 (structural rows, measured)";
  List.iter
    (fun (n, k) ->
      Format.printf "%a@.@." Table1.pp_comparison
        (Table1.measure ~objects:n ~types_per_object:k))
    [ (1000, 2); (1000, 4) ];
  Printf.printf "class explosion (one object per subset of n aspect types):\n";
  List.iter
    (fun n ->
      let s, i = Table1.worst_case_classes ~aspects:n in
      Printf.printf
        "  aspects=%d: slicing +%d classes, intersection +%d (2^n-n-1=%d)\n" n s
        i ((1 lsl n) - n - 1))
    [ 3; 4; 5; 6 ]

let table1_timing () =
  hdr "TABLE 1 (timing rows)";
  let pair (a : unit Table1.workload) (b : unit Table1.workload) =
    [ Test.make ~name:a.label (staged a.run);
      Test.make ~name:b.label (staged b.run) ]
  in
  let cast_s, cast_i = Table1.cast_workloads ~objects:1000 in
  bench "cast" (pair cast_s cast_i);
  let loc_s, loc_i = Table1.local_attr_workloads ~objects:1000 in
  bench "get_local" (pair loc_s loc_i);
  List.iter
    (fun depth ->
      let inh_s, inh_i = Table1.inherited_attr_workloads ~depth ~objects:1000 in
      bench "get_inherited" (pair inh_s inh_i))
    [ 2; 8 ];
  let sel_s, sel_i = Table1.select_scan_workloads ~objects:1000 in
  bench "select_scan"
    [ Test.make ~name:sel_s.label (staged (fun () -> ignore (sel_s.run ())));
      Test.make ~name:sel_i.label (staged (fun () -> ignore (sel_i.run ()))) ];
  let rec_s, rec_i = Table1.reclass_workloads ~objects:256 in
  bench "dynamic classification" (pair rec_s rec_i)

(* ------------------------------------------------------------------ *)
(* TABLE 2 — related systems                                           *)
(* ------------------------------------------------------------------ *)

let table2 () =
  hdr "TABLE 2 (scenario-measured)";
  Format.printf "%a@." Criteria.pp_table (Criteria.run_all ());
  bench "table2 scenario cost"
    [
      Test.make ~name:"table2:all-scenarios"
        (staged (fun () -> ignore (Criteria.run_all ())));
    ]

(* ------------------------------------------------------------------ *)
(* FIGURES 3-15 — schema-change pipeline cost                          *)
(* ------------------------------------------------------------------ *)

(* Each run evolves a FRESH university fixture, so costs do not
   accumulate across runs; the fixture build is measured separately so it
   can be subtracted. *)
let change_bench name mk_change =
  let counter = ref 0 in
  Test.make ~name
    (staged (fun () ->
         incr counter;
         let u = University.build () in
         ignore (University.populate u ~n:12);
         let tsem = Tsem.of_database u.db in
         ignore
           (Tsem.define_view_by_names tsem ~name:"V"
              [ "Person"; "Student"; "Staff"; "TeachingStaff"; "SupportStaff";
                "TA"; "Grad"; "Grader" ]);
         ignore (Tsem.evolve tsem ~view:"V" (mk_change !counter))))

let fixture_bench =
  Test.make ~name:"baseline:fixture-build-only"
    (staged (fun () ->
         let u = University.build () in
         ignore (University.populate u ~n:12);
         let tsem = Tsem.of_database u.db in
         ignore
           (Tsem.define_view_by_names tsem ~name:"V"
              [ "Person"; "Student"; "Staff"; "TeachingStaff"; "SupportStaff";
                "TA"; "Grad"; "Grader" ])))

let figures_pipeline () =
  hdr "FIGURES 3-15 (schema-change pipeline, fresh fixture per run)";
  bench ~quota:0.4 "pipeline"
    [
      fixture_bench;
      change_bench "fig3/7:add_attribute" (fun i ->
          Change.Add_attribute
            { cls = "Student"; def = Change.attr (Printf.sprintf "r%d" i) Value.TBool });
      change_bench "fig8:delete_attribute" (fun _ ->
          Change.Delete_attribute { cls = "Student"; attr_name = "gpa" });
      change_bench "fig9:add_edge" (fun _ ->
          Change.Add_edge { sup = "SupportStaff"; sub = "TA" });
      change_bench "fig10:delete_edge" (fun _ ->
          Change.Delete_edge
            { sup = "TeachingStaff"; sub = "TA"; connected_to = None });
      change_bench "fig12:add_class" (fun i ->
          Change.Add_class
            { cls = Printf.sprintf "New%d" i; connected_to = Some "Student" });
      change_bench "fig14:insert_class" (fun i ->
          Change.Insert_class
            { cls = Printf.sprintf "Mid%d" i; sup = "Person"; sub = "Student" });
      change_bench "fig15:delete_class_2" (fun _ ->
          Change.Delete_class_2 { cls = "Student" });
    ]

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md)                                               *)
(* ------------------------------------------------------------------ *)

let ablation_direct_vs_tse () =
  hdr "ABLATION: TSE (view) change vs direct destructive change";
  let direct_bench =
    let counter = ref 0 in
    Test.make ~name:"direct:add_attribute"
      (staged (fun () ->
           incr counter;
           let u = University.build () in
           ignore (University.populate u ~n:12);
           let g = Database.graph u.db in
           let view =
             Tse_views.View_schema.make ~name:"V" ~version:0 g
               [ u.person; u.student; u.ta ]
           in
           ignore
             (Direct.apply u.db view
                (Change.Add_attribute
                   {
                     cls = "Student";
                     def = Change.attr (Printf.sprintf "r%d" !counter) Value.TBool;
                   }))))
  in
  bench ~quota:0.4 "tse-vs-direct"
    [
      fixture_bench;
      change_bench "tse:add_attribute" (fun i ->
          Change.Add_attribute
            { cls = "Student"; def = Change.attr (Printf.sprintf "r%d" i) Value.TBool });
      direct_bench;
    ]

let ablation_classifier_scaling () =
  hdr "ABLATION: classifier + view generation vs schema size";
  let tests =
    List.concat_map
      (fun n ->
        let rs = Random_schema.generate ~seed:7 ~classes:n ~objects:0 () in
        let g = Database.graph rs.db in
        let view = Tse_views.View_schema.make ~name:"V" ~version:0 g rs.classes in
        let counter = ref 0 in
        [
          Test.make
            ~name:(Printf.sprintf "classify:new-select (schema=%d)" n)
            (staged (fun () ->
                 incr counter;
                 let src = List.hd rs.classes in
                 ignore
                   (Tse_algebra.Ops.select rs.db
                      ~name:(Printf.sprintf "S%d_%d" n !counter)
                      ~src
                      Expr.(attr "a1" >= int !counter))));
          Test.make
            ~name:(Printf.sprintf "viewgen:edges (classes=%d)" n)
            (staged (fun () -> ignore (Tse_views.Generation.edges g view)));
        ])
      [ 10; 40 ]
  in
  bench "scaling" tests

let ablation_propagation_depth () =
  hdr "ABLATION: update propagation vs derivation-chain depth (Section 9)";
  let mk_chain depth =
    let u = University.build () in
    let rec go src i =
      if i >= depth then src
      else
        let next =
          Tse_algebra.Ops.select u.db
            ~name:(Printf.sprintf "Chain%d" i)
            ~src
            Expr.(attr "age" >= int 0)
        in
        go next (i + 1)
    in
    (u, go u.person 0)
  in
  let tests =
    List.map
      (fun depth ->
        let u, leaf = mk_chain depth in
        Test.make
          ~name:(Printf.sprintf "create-through-chain (depth=%d)" depth)
          (staged (fun () ->
               let o =
                 Tse_update.Generic.create u.db leaf ~init:[ ("age", Value.Int 30) ]
               in
               Tse_update.Generic.delete u.db [ o ])))
      [ 1; 4; 8 ]
  in
  bench "propagation" tests

let ablation_query_engine () =
  hdr "ABLATION: query engine — indexed select vs extent scan";
  let u = University.build () in
  let idx = Tse_query.Indexes.create u.db in
  ignore (University.populate u ~n:2000);
  Tse_query.Indexes.ensure idx u.person "age";
  let pred = Expr.(attr "age" === int 30) in
  Printf.printf "  index overhead: %d bytes for %d entries\n"
    (Tse_query.Indexes.overhead_bytes idx)
    (Database.extent_size u.db u.person);
  let no_idx = Tse_query.Indexes.create u.db in
  bench "query"
    [
      Test.make ~name:"select:indexed (2000 objs)"
        (staged (fun () -> ignore (Tse_query.Engine.select u.db idx u.person pred)));
      Test.make ~name:"select:scan (2000 objs)"
        (staged (fun () ->
             ignore (Tse_query.Engine.select u.db no_idx u.person pred)));
    ]

let ablation_snapshot () =
  hdr "ABLATION: persistence (snapshot encode/parse, 500 objects)";
  let u = University.build () in
  ignore (University.populate u ~n:500);
  let s = Snapshot.to_string (Database.heap u.db) in
  Printf.printf "  snapshot size: %d bytes\n" (String.length s);
  bench "snapshot"
    [
      Test.make ~name:"snapshot:encode"
        (staged (fun () -> ignore (Snapshot.to_string (Database.heap u.db))));
      Test.make ~name:"snapshot:decode"
        (staged (fun () -> ignore (Snapshot.of_string s)));
    ]

let ablation_durability () =
  hdr "ABLATION: durability — WAL commit, checkpoint, recovery replay";
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tse_bench_durable_%d" (Unix.getpid ()))
  in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  let d, _ = Durable.open_dir ~dir () in
  let db = Durable.db d in
  let person =
    Schema_graph.register_base (Database.graph db) ~name:"Person"
      ~props:
        [
          Prop.stored ~origin:(Oid.of_int 0) "name" Value.TString;
          Prop.stored ~origin:(Oid.of_int 0) "age" Value.TInt;
        ]
      ~supers:[]
  in
  Database.note_new_class db person;
  let objs =
    List.init 100 (fun i ->
        Database.create_object db person
          ~init:
            [
              ("name", Value.String (Printf.sprintf "p%04d" i));
              ("age", Value.Int i);
            ])
  in
  Durable.commit d;
  let counter = ref 0 in
  bench "durability"
    [
      Test.make ~name:"commit:one-attr batch (fsync)"
        (staged (fun () ->
             incr counter;
             Database.set_attr db (List.hd objs) "age" (Value.Int !counter);
             Durable.commit d));
      Test.make ~name:"checkpoint:fold-wal-into-snapshot"
        (staged (fun () -> Durable.checkpoint d));
    ];
  (* leave a real log tail behind, then measure opening it *)
  List.iteri (fun i o -> Database.set_attr db o "age" (Value.Int (1000 + i))) objs;
  Durable.commit d;
  Durable.close d;
  let wal_len = (Unix.stat (Filename.concat dir "wal")).Unix.st_size in
  let d2, report = Durable.open_dir ~dir () in
  Printf.printf "  log tail: %d byte(s), %d batch(es), %d entries\n" wal_len
    report.Recovery.batches_applied report.Recovery.entries_applied;
  Durable.close d2;
  bench "recovery"
    [
      Test.make ~name:"open:snapshot+wal-tail (100 objs)"
        (staged (fun () ->
             let d, _ = Durable.open_dir ~dir () in
             Durable.close d));
    ]

let evolution_longitudinal () =
  hdr "SECTION 2 STATS: 18-month trace replayed through TSE";
  let initial_classes = 10 and initial_attrs = 30 in
  let trace =
    Evolution_trace.generate ~seed:42 ~months:18 ~initial_classes ~initial_attrs
  in
  let s = Evolution_trace.summarize trace in
  let rs =
    Random_schema.generate ~seed:42 ~classes:initial_classes ~objects:50 ()
  in
  let tsem = Tsem.of_database rs.db in
  ignore (Tsem.define_view_by_names tsem ~name:"V" (Random_schema.class_names rs));
  let applied = ref 0 and rejected = ref 0 in
  let t0 = now () in
  Evolution_trace.replay tsem ~view:"V" trace ~applied ~rejected;
  let dt = now () -. t0 in
  Printf.printf
    "  %d changes (%d applied, %d rejected) in %.3f s — %.2f ms/change\n"
    s.Evolution_trace.total !applied !rejected dt
    (1000. *. dt /. float_of_int (max 1 !applied));
  Printf.printf "  final schema: %d classes; view version %d; consistent: %b\n"
    (Schema_graph.size (Database.graph rs.db))
    (Tsem.current tsem "V").Tse_views.View_schema.version
    (Database.check rs.db = [])

let () =
  let argv = Array.to_list Sys.argv in
  if List.mem "reclassify" argv then begin
    Bench_reclassify.run ~smoke:(List.mem "--smoke" argv) ();
    exit 0
  end;
  if List.mem "query" argv then begin
    Bench_query.run ~smoke:(List.mem "--smoke" argv) ();
    exit 0
  end;
  if List.mem "commit" argv then begin
    Bench_commit.run ~smoke:(List.mem "--smoke" argv) ();
    exit 0
  end;
  if List.mem "analyze" argv then begin
    Bench_analyze.run ~smoke:(List.mem "--smoke" argv) ();
    exit 0
  end;
  if List.mem "scenarios" argv then begin
    Bench_scenarios.run ~smoke:(List.mem "--smoke" argv) ();
    exit 0
  end;
  Printf.printf
    "TSE benchmark harness — one section per paper table/figure + ablations\n";
  table1_structural ();
  table1_timing ();
  table2 ();
  figures_pipeline ();
  ablation_direct_vs_tse ();
  ablation_classifier_scaling ();
  ablation_propagation_depth ();
  ablation_query_engine ();
  ablation_snapshot ();
  ablation_durability ();
  evolution_longitudinal ();
  Printf.printf "\nbench: done\n"
