(* Chaos-soak scenario benchmark: a long seeded run of the
   crash/recovery harness (lib/workload/soak) — hundreds of evolutions,
   dozens of injected mid-evolution crashes — reporting steps survived,
   crashes recovered and the recovery-latency histogram. Emits
   machine-readable BENCH_scenarios.json so CI and the driver can assert
   the verdict; exits 1 on any violation. *)

module Soak = Tse_workload.Soak

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "tse_bench_soak_%d_%d" (Unix.getpid ()) !counter)
    in
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Unix.rmdir dir
    end;
    dir

let run ?(smoke = false) ?steps ?crashes ?seed () =
  let base = Soak.default ~dir:(fresh_dir ()) in
  let cfg =
    {
      base with
      Soak.steps =
        (match steps with Some s -> s | None -> if smoke then 50 else 300);
      crashes =
        (match crashes with Some c -> c | None -> if smoke then 5 else 30);
      seed = (match seed with Some s -> s | None -> base.Soak.seed);
    }
  in
  Printf.printf
    "scenarios: seed=%d steps=%d crashes=%d policy=%s dir=%s\n%!" cfg.Soak.seed
    cfg.Soak.steps cfg.Soak.crashes
    (match cfg.Soak.policy with
    | None -> "default"
    | Some p -> Tse_db.Durable.policy_to_string p)
    cfg.Soak.dir;
  let t0 = Unix.gettimeofday () in
  let o = Soak.run cfg in
  let dt = Unix.gettimeofday () -. t0 in
  Format.printf "%a@." Soak.pp_outcome o;
  Printf.printf "wall time: %.2f s\n" dt;
  let json = Soak.to_json cfg o in
  let oc = open_out "BENCH_scenarios.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_scenarios.json\n";
  (* headline assertions: the harness must have really soaked, and every
     recovery must have passed every check *)
  let failures = ref [] in
  let expect cond msg = if not cond then failures := msg :: !failures in
  expect
    (o.Soak.evolutions_applied + o.Soak.evolutions_rejected >= cfg.Soak.steps)
    "not every step ran an evolution attempt";
  if not smoke then begin
    expect (o.Soak.evolutions_applied >= 200)
      (Printf.sprintf "expected >= 200 applied evolutions, got %d"
         o.Soak.evolutions_applied);
    expect (o.Soak.crashes_injected >= 20)
      (Printf.sprintf "expected >= 20 injected crashes, got %d"
         o.Soak.crashes_injected)
  end
  else expect (o.Soak.crashes_injected >= 1) "no crash was injected";
  expect (o.Soak.violations = [])
    (Printf.sprintf "%d violation(s)" (List.length o.Soak.violations));
  match !failures with
  | [] -> Printf.printf "scenarios: PASS\n"
  | fs ->
    List.iter (Printf.printf "scenarios: FAIL: %s\n") (List.rev fs);
    exit 1
