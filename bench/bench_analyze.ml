(* Static-analyzer benchmark: whole-schema analysis throughput across
   schema sizes, and the admission-gate overhead on the evolution
   pipeline (TSE_ANALYZE=enforce vs off). Emits BENCH_analyze.json and
   enforces the headline claims in-source: every generated fixture is
   diagnostic-clean, and the gate costs a bounded fraction of a change. *)

open Tse_store
open Tse_schema
open Tse_db
open Tse_core
open Tse_workload
module Metrics = Tse_obs.Metrics
module Analysis = Tse_analysis.Analysis
module Lens = Tse_analysis.Lens

let time_ns_per_op f ~ops =
  let best = ref infinity in
  for _ = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best *. 1e9 /. float_of_int ops

type schema_row = {
  classes : int;
  virtuals : int;
  analyze_ns : float;
  lens_ns : float;
  lens_entries : int;
  sr_classes_checked : int;
  sr_exprs : int;
  sr_errors : int;
  sr_warnings : int;
}

let measure_schema ~reps (classes, virtuals) =
  let rs = Random_schema.generate ~seed:7 ~classes ~virtuals ~objects:0 () in
  let g = Database.graph rs.db in
  let report = Analysis.analyze g in
  let analyze_ns =
    time_ns_per_op
      (fun () ->
        for _ = 1 to reps do
          ignore (Analysis.analyze g)
        done)
      ~ops:reps
  in
  (* the lens pass alone: Analysis.analyze already includes it, but the
     standalone number shows what the translatability verdicts cost on
     top of expression typechecking *)
  let lens_ns =
    time_ns_per_op
      (fun () ->
        for _ = 1 to reps do
          ignore (Lens.analyze g)
        done)
      ~ops:reps
  in
  {
    classes;
    virtuals;
    analyze_ns;
    lens_ns;
    lens_entries = List.length report.Analysis.lens;
    sr_classes_checked = report.Analysis.classes_checked;
    sr_exprs = report.Analysis.exprs_checked;
    sr_errors = List.length (Analysis.errors report);
    sr_warnings = List.length (Analysis.warnings report);
  }

(* Gate overhead: one university fixture per side, a fixed sequence of
   gate-relevant changes (methods to typecheck, attributes to conform)
   applied through the full Tsem pipeline with the gate off vs
   enforcing. The translator pipeline dominates; the per-change delta is
   the gate's price. *)
let gate_changes n =
  List.concat
    (List.init n (fun i ->
         [
           Change.Add_attribute
             {
               cls = "Student";
               def = Change.attr (Printf.sprintf "ga%d" i) Value.TBool;
             };
           Change.Add_method
             {
               cls = "Person";
               method_name = Printf.sprintf "gm%d" i;
               body = Expr.Arith (Expr.Add, Expr.attr "age", Expr.int i);
             };
         ]))

(* The gate's own cost, measured directly: ns per Admission.admit call
   on the same fixture and change mix the differential measurement
   uses. The differential (enforce minus off over the full pipeline)
   has a noise floor of several percent — each change costs ~400ms of
   translator work, so GC and scheduler jitter swamp a microsecond
   gate — which is why the <1% claim is enforced on this direct
   number against the measured per-change pipeline cost. *)
let measure_gate_direct ~changes =
  let u = University.build () in
  ignore (University.populate u ~n:12);
  let tsem = Tsem.of_database u.db in
  let view =
    Tsem.define_view_by_names tsem ~name:"V"
      [ "Person"; "Student"; "Staff"; "TeachingStaff"; "SupportStaff";
        "TA"; "Grad"; "Grader" ]
  in
  Admission.set_policy Admission.Enforce;
  let cs = gate_changes changes in
  let db = Tsem.db tsem in
  let ops = List.length cs in
  time_ns_per_op
    (fun () -> List.iter (fun c -> Admission.admit db view c) cs)
    ~ops

let measure_gate ~changes policy =
  (* best of 3 fresh fixtures: a single pass over the pipeline is noisy
     enough (GC, page cache) to swamp the gate's microsecond-scale cost,
     and the <1%-overhead claim needs the noise floor below the claim *)
  let best = ref infinity in
  for _ = 1 to 3 do
    let u = University.build () in
    ignore (University.populate u ~n:12);
    let tsem = Tsem.of_database u.db in
    ignore
      (Tsem.define_view_by_names tsem ~name:"V"
         [ "Person"; "Student"; "Staff"; "TeachingStaff"; "SupportStaff";
           "TA"; "Grad"; "Grader" ]);
    Admission.set_policy policy;
    let cs = gate_changes changes in
    let ops = List.length cs in
    let t0 = Unix.gettimeofday () in
    List.iter (fun c -> ignore (Tsem.evolve tsem ~view:"V" c)) cs;
    let dt = Unix.gettimeofday () -. t0 in
    let ns = dt *. 1e9 /. float_of_int ops in
    if ns < !best then best := ns
  done;
  !best

let json_of rows ~smoke ~gate_changes ~off_ns ~enforce_ns ~gate_ns =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"benchmark\": \"analyze\",\n";
  Printf.bprintf b "  \"smoke\": %b,\n" smoke;
  Printf.bprintf b "  \"domains\": %d,\n"
    (Tse_pool.Pool.size (Tse_pool.Pool.global ()));
  Printf.bprintf b "  \"host_cores\": %d,\n" (Domain.recommended_domain_count ());
  Buffer.add_string b "  \"schemas\": [\n";
  List.iteri
    (fun i r ->
      Printf.bprintf b
        "    {\"classes\": %d, \"virtuals\": %d, \"analyze_ns\": %.1f, \
         \"lens_ns\": %.1f, \"lens_entries\": %d, \"classes_checked\": %d, \
         \"exprs_checked\": %d, \"errors\": %d, \"warnings\": %d}%s\n"
        r.classes r.virtuals r.analyze_ns r.lens_ns r.lens_entries
        r.sr_classes_checked r.sr_exprs r.sr_errors r.sr_warnings
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Buffer.add_string b "  ],\n";
  Printf.bprintf b
    "  \"gate\": {\"changes\": %d, \"off_ns_per_change\": %.1f, \
     \"enforce_ns_per_change\": %.1f, \"overhead_pct\": %.2f, \
     \"gate_ns_per_change\": %.1f, \"overhead_pct_direct\": %.4f},\n"
    gate_changes off_ns enforce_ns
    (100. *. (enforce_ns -. off_ns) /. off_ns)
    gate_ns
    (100. *. gate_ns /. off_ns);
  Printf.bprintf b "  \"metrics\": {\n";
  Printf.bprintf b "    \"gate_checks\": %d,\n"
    (Metrics.find_counter "analysis.gate_checks");
  Printf.bprintf b "    \"gate_errors\": %d,\n"
    (Metrics.find_counter "analysis.gate_errors");
  Printf.bprintf b "    \"gate_rejections\": %d,\n"
    (Metrics.find_counter "analysis.gate_rejections");
  Printf.bprintf b "    \"registry\": %s\n"
    (Metrics.to_json (Metrics.nonzero (Metrics.snapshot ())));
  Buffer.add_string b "  }\n}\n";
  Buffer.contents b

let run ~smoke () =
  Metrics.reset ();
  let reps = if smoke then 5 else 50 in
  let sizes =
    if smoke then [ (20, 10) ] else [ (20, 10); (100, 50); (300, 150) ]
  in
  Printf.printf "static analyzer: whole-schema analysis throughput\n%!";
  let rows = List.map (measure_schema ~reps) sizes in
  List.iter
    (fun r ->
      Printf.printf
        "  classes=%3d virtuals=%3d  analyze %10.1f ns/op  lens %10.1f \
         ns/op (%d entries)  (%d classes, %d exprs, %d errors, %d warnings)\n"
        r.classes r.virtuals r.analyze_ns r.lens_ns r.lens_entries
        r.sr_classes_checked r.sr_exprs r.sr_errors r.sr_warnings)
    rows;
  let changes = if smoke then 10 else 60 in
  let off_ns = measure_gate ~changes Admission.Off in
  let enforce_ns = measure_gate ~changes Admission.Enforce in
  let gate_ns = measure_gate_direct ~changes in
  let overhead = 100. *. (enforce_ns -. off_ns) /. off_ns in
  let overhead_direct = 100. *. gate_ns /. off_ns in
  Printf.printf
    "admission gate: %d changes/side  off %.1f ns/change  enforce %.1f \
     ns/change  differential %.2f%%  gate alone %.1f ns/change = %.4f%%\n"
    (2 * changes) off_ns enforce_ns overhead gate_ns overhead_direct;
  let json =
    json_of rows ~smoke ~gate_changes:(2 * changes) ~off_ns ~enforce_ns
      ~gate_ns
  in
  let oc = open_out "BENCH_analyze.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_analyze.json\n";
  (* headline claims, enforced where the numbers are produced *)
  List.iter
    (fun r ->
      if r.sr_errors <> 0 then begin
        Printf.printf
          "FAIL: generated schema (classes=%d) is not diagnostic-clean\n"
          r.classes;
        exit 1
      end)
    rows;
  if (not smoke) && overhead_direct > 1.0 then begin
    Printf.printf "FAIL: admission-gate overhead above 1%% per change\n";
    exit 1
  end
