(* Query-pipeline benchmark: million-object extent scans, interpreted
   vs compiled predicate evaluation, and index-assisted plans (hash
   equality probe, ordered range scan). Emits BENCH_query.json with a
   metrics section (plan-cache hit rate, rows scanned) so CI and the
   driver can assert the compiled-pipeline speedups. *)

open Tse_store
open Tse_schema
open Tse_db
module Metrics = Tse_obs.Metrics
module Timeseries = Tse_obs.Timeseries
module Telemetry_server = Tse_obs.Telemetry_server
module Engine = Tse_query.Engine
module Indexes = Tse_query.Indexes
module Pool = Tse_pool.Pool

let score_mod = 100_000

(* One base class, no virtuals: object creation stays cheap at 10^6 and
   every measured cost is query-side. [grp] has 100 distinct values
   (equality probes), [score] sweeps 0..99999 (range windows). *)
let mk_fixture ~objects =
  let db = Database.create () in
  let g = Database.graph db in
  let props =
    [
      Prop.stored ~origin:(Oid.of_int 0) "grp" Value.TInt;
      Prop.stored ~origin:(Oid.of_int 0) "score" Value.TInt;
    ]
  in
  let item = Schema_graph.register_base g ~name:"Item" ~props ~supers:[] in
  Database.note_new_class db item;
  for j = 0 to objects - 1 do
    ignore
      (Database.create_object db item
         ~init:
           [
             ("grp", Value.Int (j mod 100));
             ("score", Value.Int (j * 7919 mod score_mod));
           ])
  done;
  (db, item)

let time_ns f =
  let best = ref infinity in
  for _ = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best *. 1e9

(* Per-run latencies (ms) over [runs] repetitions, folded into a
   quantile snapshot — the table the report carries instead of a bare
   best-of mean. *)
let latency_quantiles ~runs f =
  let obs =
    List.init runs (fun _ ->
        let t0 = Unix.gettimeofday () in
        f ();
        (Unix.gettimeofday () -. t0) *. 1000.)
  in
  Metrics.Histogram.of_observations
    ~buckets:[ 0.1; 0.25; 0.5; 1.; 2.; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1000. ]
    obs

let quantiles_json (h : Metrics.hist_snapshot) =
  Printf.sprintf
    "{\"count\": %d, \"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f}"
    h.Metrics.h_count h.Metrics.h_p50 h.Metrics.h_p95 h.Metrics.h_p99

(* The telemetry-plane overhead measurement: the same best-of compiled
   scan, once quiet and once with the full live plane attached — the
   sampler ticking fast (25ms), the stats endpoint serving, and a
   client domain scraping /metrics in a loop. *)
let measure_sampler_overhead work =
  let baseline_ns = time_ns work in
  let ts = Timeseries.create () in
  Timeseries.start ~interval_ms:25 ts;
  let server = Telemetry_server.start ~addr:"127.0.0.1:0" ~ts () in
  let stop_poll = Atomic.make false in
  let poller =
    match server with
    | Error _ -> None (* sandbox without sockets: sampler-only overhead *)
    | Ok srv ->
      Some
        (Domain.spawn (fun () ->
             let addr = Telemetry_server.addr srv in
             while not (Atomic.get stop_poll) do
               ignore (Telemetry_server.fetch ~addr ~path:"/metrics");
               ignore (Unix.select [] [] [] 0.025)
             done))
  in
  let live_ns = time_ns work in
  Atomic.set stop_poll true;
  Option.iter Domain.join poller;
  (match server with Ok srv -> Telemetry_server.stop srv | Error _ -> ());
  Timeseries.stop ts;
  let served = match server with Ok _ -> true | Error _ -> false in
  ((live_ns -. baseline_ns) /. baseline_ns *. 100., served)

let json_of ~smoke ~objects ~rows ~scaling ~latency fields =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"benchmark\": \"query\",\n";
  Printf.bprintf b "  \"smoke\": %b,\n" smoke;
  Printf.bprintf b "  \"objects\": %d,\n" objects;
  Printf.bprintf b "  \"domains\": %d,\n" (Pool.size (Pool.global ()));
  Printf.bprintf b "  \"host_cores\": %d,\n" (Domain.recommended_domain_count ());
  Printf.bprintf b "  \"latency_ms\": {%s},\n"
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" k v) latency));
  Printf.bprintf b "  \"parallel_scaling\": [\n";
  List.iteri
    (fun i (d, ns, sp) ->
      Printf.bprintf b
        "    {\"domains\": %d, \"compiled_scan_ns\": %.0f, \"speedup\": \
         %.2f}%s\n"
        d ns sp
        (if i = List.length scaling - 1 then "" else ","))
    scaling;
  Printf.bprintf b "  ],\n";
  Printf.bprintf b "  \"results\": {\n";
  List.iteri
    (fun i (k, v) ->
      Printf.bprintf b "    \"%s\": %s%s\n" k v
        (if i = List.length fields - 1 then "" else ","))
    fields;
  Printf.bprintf b "  },\n";
  Printf.bprintf b "  \"rows\": {%s},\n"
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %d" k v) rows));
  let hits = Metrics.find_counter "query.plan_cache_hits" in
  let misses = Metrics.find_counter "query.plan_cache_misses" in
  Printf.bprintf b "  \"metrics\": {\n";
  Printf.bprintf b "    \"plan_cache_hits\": %d,\n" hits;
  Printf.bprintf b "    \"plan_cache_misses\": %d,\n" misses;
  Printf.bprintf b "    \"plan_cache_hit_rate\": %.4f,\n"
    (if hits + misses = 0 then 0.0
     else float_of_int hits /. float_of_int (hits + misses));
  Printf.bprintf b "    \"rows_scanned_total\": %d,\n"
    (Metrics.find_counter "query.rows_scanned");
  Printf.bprintf b "    \"rows_returned_total\": %d,\n"
    (Metrics.find_counter "query.rows_returned");
  Printf.bprintf b "    \"registry\": %s\n"
    (Metrics.to_json (Metrics.nonzero (Metrics.snapshot ())));
  Printf.bprintf b "  }\n}\n";
  Buffer.contents b

let run ~smoke () =
  Metrics.reset ();
  let objects =
    match Sys.getenv_opt "BENCH_QUERY_OBJECTS" with
    | Some s -> int_of_string s
    | None -> if smoke then 20_000 else 1_000_000
  in
  Printf.printf "query pipeline: %d-object extent\n%!" objects;
  let db, item = mk_fixture ~objects in
  let indexes = Indexes.create db in
  let no_idx = Indexes.create db in
  (* moderately selective two-conjunct predicate for the scan comparison;
     the compiled pipeline orders the equality conjunct first *)
  let scan_pred = Expr.(attr "score" >= int 50_000 && (attr "grp" === int 7)) in
  (* highly selective range window (~0.1% of the extent) *)
  let sel_pred =
    Expr.(attr "score" >= int 99_000 && (attr "score" < int 99_100))
  in
  let interpreted pred () =
    ignore
      (Oid.Set.filter (fun o -> Database.holds db o pred)
         (Database.extent db item))
  in
  let engine idx pred () = ignore (Engine.select db idx item pred) in

  (* ground truth + plan-cache warmup in one step *)
  let base_rows pred = Oid.Set.cardinal (Engine.select db no_idx item pred) in
  let scan_rows = base_rows scan_pred in
  let sel_rows = base_rows sel_pred in

  let interpreted_scan_ns = time_ns (interpreted scan_pred) in
  let compiled_scan_ns = time_ns (engine no_idx scan_pred) in
  let interpreted_sel_ns = time_ns (interpreted sel_pred) in
  let compiled_sel_ns = time_ns (engine no_idx sel_pred) in

  Indexes.ensure indexes item "grp";
  Indexes.ensure ~kind:Indexes.Ordered indexes item "score";

  (* result-set agreement before trusting the timings *)
  let check name pred expected =
    let ex, hits = Engine.select_explain db indexes item pred in
    if Oid.Set.cardinal hits <> expected then begin
      Printf.printf "FAIL: %s returned %d rows, scan returned %d\n" name
        (Oid.Set.cardinal hits) expected;
      exit 1
    end;
    ex
  in
  let hash_ex = check "hash-index plan" scan_pred scan_rows in
  let range_ex = check "range-index plan" sel_pred sel_rows in
  (match hash_ex.Engine.ex_plan with
  | Engine.Index_lookup { kind = Engine.Hash; _ } -> ()
  | p ->
    Format.printf "FAIL: expected hash index plan, got %a@." Engine.pp_plan p;
    exit 1);
  (match range_ex.Engine.ex_plan with
  | Engine.Range_scan _ -> ()
  | p ->
    Format.printf "FAIL: expected range scan plan, got %a@." Engine.pp_plan p;
    exit 1);

  let hash_index_ns = time_ns (engine indexes scan_pred) in
  let range_index_ns = time_ns (engine indexes sel_pred) in

  (* Parallel scaling sweep: the same compiled extent scan at 1/2/4/8
     domains, resizing the global pool between runs.  d=1 is the exact
     sequential path (the pool spawns nothing), so the curve's baseline
     IS the compiled_scan_ns measured above, re-timed.  Every run is
     checked against the sequential row count before its timing is
     trusted. *)
  let host_cores = Domain.recommended_domain_count () in
  let scaling =
    List.map
      (fun d ->
        Pool.set_global_size d;
        let rows = Oid.Set.cardinal (Engine.select db no_idx item scan_pred) in
        if rows <> scan_rows then begin
          Printf.printf "FAIL: parallel scan at %d domains returned %d rows, \
                         sequential returned %d\n"
            d rows scan_rows;
          exit 1
        end;
        (d, time_ns (engine no_idx scan_pred)))
      [ 1; 2; 4; 8 ]
  in
  Pool.set_global_size (Pool.default_domains ());
  let ns_at d = List.assoc d scaling in
  let scaling =
    List.map (fun (d, ns) -> (d, ns, ns_at 1 /. ns)) scaling
  in
  let par_speedup_4 = ns_at 1 /. ns_at 4 in

  (* Per-run latency quantiles over repeated executions (what a client
     would see call after call), and the live-telemetry overhead. *)
  let runs = if smoke then 10 else 30 in
  let lat_compiled = latency_quantiles ~runs (engine no_idx scan_pred) in
  let lat_range = latency_quantiles ~runs (engine indexes sel_pred) in
  let sampler_overhead_pct, overhead_served =
    measure_sampler_overhead (engine no_idx scan_pred)
  in

  let per_row ns = ns /. float_of_int objects in
  let speedup = interpreted_scan_ns /. compiled_scan_ns in
  Printf.printf
    "  scan pred   : interpreted %10.0f ns  (%6.1f ns/row)   compiled \
     %10.0f ns  (%6.1f ns/row)   speedup %.2fx\n"
    interpreted_scan_ns
    (per_row interpreted_scan_ns)
    compiled_scan_ns (per_row compiled_scan_ns) speedup;
  Printf.printf "  hash index  : %10.0f ns  (%d candidates, %d rows)\n"
    hash_index_ns hash_ex.Engine.rows_scanned hash_ex.Engine.rows_returned;
  Printf.printf
    "  range pred  : interpreted %10.0f ns   compiled %10.0f ns   range \
     index %10.0f ns  (%d candidates, %d rows)\n"
    interpreted_sel_ns compiled_sel_ns range_index_ns
    range_ex.Engine.rows_scanned range_ex.Engine.rows_returned;
  Printf.printf "  parallel scan scaling (host has %d cores):\n" host_cores;
  List.iter
    (fun (d, ns, sp) ->
      Printf.printf "    %d domain%s : %10.0f ns  (%5.2fx)\n" d
        (if d = 1 then " " else "s")
        ns sp)
    scaling;
  Printf.printf
    "  compiled scan latency (%d runs): p50 %.3fms  p95 %.3fms  p99 %.3fms\n"
    runs lat_compiled.Metrics.h_p50 lat_compiled.Metrics.h_p95
    lat_compiled.Metrics.h_p99;
  Printf.printf
    "  range plan latency    (%d runs): p50 %.3fms  p95 %.3fms  p99 %.3fms\n"
    runs lat_range.Metrics.h_p50 lat_range.Metrics.h_p95
    lat_range.Metrics.h_p99;
  Printf.printf "  live telemetry overhead: %+.2f%% (%s)\n" sampler_overhead_pct
    (if overhead_served then "sampler + endpoint + scraper"
     else "sampler only, no sockets here");

  let f v = Printf.sprintf "%.0f" v in
  let json =
    json_of ~smoke ~objects ~scaling
      ~latency:
        [
          ("compiled_scan", quantiles_json lat_compiled);
          ("range_plan", quantiles_json lat_range);
        ]
      ~rows:
        [
          ("scan_pred", scan_rows);
          ("selective_pred", sel_rows);
          ("hash_candidates", hash_ex.Engine.rows_scanned);
          ("range_candidates", range_ex.Engine.rows_scanned);
        ]
      [
        ("interpreted_scan_ns", f interpreted_scan_ns);
        ("compiled_scan_ns", f compiled_scan_ns);
        ("compiled_speedup", Printf.sprintf "%.2f" speedup);
        ("hash_index_ns", f hash_index_ns);
        ("interpreted_selective_ns", f interpreted_sel_ns);
        ("compiled_selective_ns", f compiled_sel_ns);
        ("range_index_ns", f range_index_ns);
        ( "range_speedup_vs_interpreted",
          Printf.sprintf "%.2f" (interpreted_sel_ns /. range_index_ns) );
        ( "range_speedup_vs_compiled",
          Printf.sprintf "%.2f" (compiled_sel_ns /. range_index_ns) );
        ("parallel_scan_speedup_4", Printf.sprintf "%.2f" par_speedup_4);
        ( "parallel_scan_speedup_8",
          Printf.sprintf "%.2f" (ns_at 1 /. ns_at 8) );
        ("sampler_overhead_pct", Printf.sprintf "%.2f" sampler_overhead_pct);
      ]
  in
  let oc = open_out "BENCH_query.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_query.json\n";
  (* the headline claims, enforced where the numbers are produced *)
  if (not smoke) && speedup < 3.0 then begin
    Printf.printf "FAIL: compiled scan below 3x over interpreted\n";
    exit 1
  end;
  if
    (not smoke)
    && (range_index_ns >= interpreted_sel_ns || range_index_ns >= compiled_sel_ns)
  then begin
    Printf.printf "FAIL: range-index plan did not beat both scans\n";
    exit 1
  end;
  if smoke && speedup < 1.0 then begin
    Printf.printf "FAIL: compiled scan slower than interpreted\n";
    exit 1
  end;
  (* The multicore floor is only meaningful when the host can actually
     run 4 domains in parallel; on smaller machines the honest numbers
     are still recorded (with host_cores) and the floor is waived. *)
  if (not smoke) && host_cores >= 4 && par_speedup_4 < 2.5 then begin
    Printf.printf
      "FAIL: parallel compiled scan below 2.5x at 4 domains on a %d-core \
       host\n"
      host_cores;
    exit 1
  end;
  (* Telemetry must be effectively free.  At full scale the scans are
     long enough for best-of timing to resolve 1%; smoke runs are
     millisecond-sized and timer noise dominates, so the floor there
     only catches something catastrophic. *)
  let overhead_cap = if smoke then 25.0 else 1.0 in
  if sampler_overhead_pct >= overhead_cap then begin
    Printf.printf
      "FAIL: live telemetry overhead %.2f%% on the compiled scan (cap %.1f%%)\n"
      sampler_overhead_pct overhead_cap;
    exit 1
  end
